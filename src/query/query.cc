#include "query/query.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace aqsios::query {

const char* SelectivityModeName(SelectivityMode mode) {
  switch (mode) {
    case SelectivityMode::kCorrelatedAttribute:
      return "correlated_attribute";
    case SelectivityMode::kIndependent:
      return "independent";
  }
  return "unknown";
}

double ChainSelectivity(const std::vector<double>& effective, size_t begin,
                        size_t end) {
  AQSIOS_DCHECK_LE(begin, end);
  AQSIOS_DCHECK_LE(end, effective.size());
  double s = 1.0;
  for (size_t i = begin; i < end; ++i) s *= effective[i];
  return s;
}

SimTime ChainExpectedCost(const std::vector<OperatorSpec>& ops,
                          const std::vector<double>& effective, size_t begin,
                          size_t end) {
  AQSIOS_DCHECK_EQ(ops.size(), effective.size());
  AQSIOS_DCHECK_LE(begin, end);
  AQSIOS_DCHECK_LE(end, ops.size());
  SimTime cost = 0.0;
  double reach_probability = 1.0;
  for (size_t i = begin; i < end; ++i) {
    cost += reach_probability * ops[i].cost();
    reach_probability *= effective[i];
  }
  return cost;
}

SimTime ChainTotalCost(const std::vector<OperatorSpec>& ops, size_t begin,
                       size_t end) {
  AQSIOS_DCHECK_LE(begin, end);
  AQSIOS_DCHECK_LE(end, ops.size());
  SimTime total = 0.0;
  for (size_t i = begin; i < end; ++i) total += ops[i].cost();
  return total;
}

std::vector<double> EffectiveSelectivitiesFromValues(
    const std::vector<double>& raw, SelectivityMode mode) {
  std::vector<double> effective;
  effective.reserve(raw.size());
  if (mode == SelectivityMode::kIndependent) {
    return raw;
  }
  // Correlated-attribute mode: all predicates test the same uniform
  // attribute, so the conditional pass probability of operator i given the
  // tuple survived operators [0, i) is min(s_0..s_i) / min(s_0..s_{i-1}).
  double running_min = 1.0;
  for (double s : raw) {
    const double new_min = std::min(running_min, s);
    effective.push_back(running_min > 0.0 ? new_min / running_min : 0.0);
    running_min = new_min;
  }
  return effective;
}

std::vector<double> EffectiveSelectivities(const std::vector<OperatorSpec>& ops,
                                           SelectivityMode mode) {
  std::vector<double> raw;
  raw.reserve(ops.size());
  for (const OperatorSpec& op : ops) raw.push_back(op.selectivity);
  return EffectiveSelectivitiesFromValues(raw, mode);
}

std::vector<double> ActualEffectiveSelectivities(
    const std::vector<OperatorSpec>& ops, SelectivityMode mode) {
  std::vector<double> raw;
  raw.reserve(ops.size());
  for (const OperatorSpec& op : ops) {
    raw.push_back(op.EffectiveActualSelectivity());
  }
  return EffectiveSelectivitiesFromValues(raw, mode);
}

CompiledQuery::CompiledQuery(QuerySpec spec, SelectivityMode mode)
    : spec_(std::move(spec)), mode_(mode) {
  Validate();
  ComputeDerived();
}

void CompiledQuery::Validate() const {
  auto validate_filter_chain = [](const std::vector<OperatorSpec>& ops) {
    for (const OperatorSpec& op : ops) {
      AQSIOS_CHECK(op.kind != OperatorKind::kWindowJoin)
          << "window joins may only appear as QuerySpec::join_op";
      AQSIOS_CHECK_GT(op.cost_ms, 0.0) << op.ToString();
      AQSIOS_CHECK_GT(op.selectivity, 0.0) << op.ToString();
      AQSIOS_CHECK_LE(op.selectivity, 1.0) << op.ToString();
      if (op.actual_selectivity >= 0.0) {
        AQSIOS_CHECK_GT(op.actual_selectivity, 0.0) << op.ToString();
        AQSIOS_CHECK_LE(op.actual_selectivity, 1.0) << op.ToString();
      }
    }
  };
  auto validate_join = [](const OperatorSpec& join) {
    AQSIOS_CHECK(join.kind == OperatorKind::kWindowJoin);
    AQSIOS_CHECK_GT(join.cost_ms, 0.0);
    AQSIOS_CHECK_GT(join.selectivity, 0.0);
    AQSIOS_CHECK_LE(join.selectivity, 1.0);
    AQSIOS_CHECK((join.window_seconds > 0.0) != (join.window_rows > 0))
        << "window join needs exactly one of a time or a row window: "
        << join.ToString();
  };
  if (spec_.is_multi_stream()) {
    AQSIOS_CHECK(spec_.join_op.has_value())
        << "multi-stream query " << spec_.id << " needs a join operator";
    validate_join(*spec_.join_op);
    AQSIOS_CHECK_NE(spec_.left_stream, spec_.right_stream)
        << "two-stream query must read two distinct streams";
    AQSIOS_CHECK_GT(spec_.left_mean_inter_arrival, 0.0);
    AQSIOS_CHECK_GT(spec_.right_mean_inter_arrival, 0.0);
    validate_filter_chain(spec_.left_ops);
    validate_filter_chain(spec_.right_ops);
    validate_filter_chain(spec_.common_ops);
    std::vector<stream::StreamId> streams = {spec_.left_stream,
                                             spec_.right_stream};
    for (const JoinStage& stage : spec_.extra_stages) {
      validate_join(stage.join);
      validate_filter_chain(stage.side_ops);
      AQSIOS_CHECK_GT(stage.mean_inter_arrival, 0.0);
      for (stream::StreamId s : streams) {
        AQSIOS_CHECK_NE(s, stage.stream)
            << "join inputs must read distinct streams";
      }
      streams.push_back(stage.stream);
    }
  } else {
    AQSIOS_CHECK(spec_.extra_stages.empty())
        << "extra join stages require a multi-stream query";
    AQSIOS_CHECK(!spec_.join_op.has_value())
        << "single-stream query " << spec_.id << " cannot have a join";
    AQSIOS_CHECK(spec_.right_ops.empty());
    AQSIOS_CHECK(spec_.common_ops.empty());
    AQSIOS_CHECK(!spec_.left_ops.empty())
        << "query " << spec_.id << " has no operators";
    validate_filter_chain(spec_.left_ops);
  }
}

void CompiledQuery::ComputeDerived() {
  left_effective_selectivity_ = EffectiveSelectivities(spec_.left_ops, mode_);
  if (spec_.is_multi_stream()) {
    right_effective_selectivity_ =
        EffectiveSelectivities(spec_.right_ops, mode_);
    common_effective_selectivity_ =
        EffectiveSelectivities(spec_.common_ops, mode_);
    for (const JoinStage& stage : spec_.extra_stages) {
      stage_effective_selectivity_.push_back(
          EffectiveSelectivities(stage.side_ops, mode_));
    }
    // Definition 6 generalized to a left-deep pipeline: every side segment
    // is processed once and every join charges C_J to each of its two
    // inputs: T = Σ_j C_side(j) + Σ_s 2·C_J(s) + C_C.
    ideal_time_ =
        ChainTotalCost(spec_.common_ops, 0, spec_.common_ops.size());
    for (int input = 0; input < num_join_inputs(); ++input) {
      ideal_time_ += TotalSideCost(input);
    }
    for (int stage = 0; stage < num_join_stages(); ++stage) {
      ideal_time_ += 2.0 * StageJoin(stage).cost();
    }
  } else {
    chain_effective_selectivity_ = left_effective_selectivity_;
    actual_chain_effective_selectivity_ =
        ActualEffectiveSelectivities(spec_.left_ops, mode_);
    ideal_time_ = ChainTotalCost(spec_.left_ops, 0, spec_.left_ops.size());
  }
}

double CompiledQuery::EffectiveChainSelectivity(int x) const {
  AQSIOS_CHECK(!is_multi_stream());
  AQSIOS_CHECK_GE(x, 0);
  AQSIOS_CHECK_LT(x, chain_length());
  return chain_effective_selectivity_[static_cast<size_t>(x)];
}

SegmentStats CompiledQuery::ChainSegmentStats(int x) const {
  AQSIOS_CHECK(!is_multi_stream())
      << "use SideLeafStats for multi-stream queries";
  AQSIOS_CHECK_GE(x, 0);
  AQSIOS_CHECK_LT(x, chain_length());
  SegmentStats stats;
  const size_t begin = static_cast<size_t>(x);
  const size_t end = spec_.left_ops.size();
  stats.selectivity = ChainSelectivity(chain_effective_selectivity_, begin,
                                       end);
  stats.expected_cost = ChainExpectedCost(
      spec_.left_ops, chain_effective_selectivity_, begin, end);
  stats.ideal_time = ideal_time_;
  return stats;
}

SegmentStats CompiledQuery::ActualChainSegmentStats(int x) const {
  AQSIOS_CHECK(!is_multi_stream())
      << "actual stats are implemented for single-stream chains";
  AQSIOS_CHECK_GE(x, 0);
  AQSIOS_CHECK_LT(x, chain_length());
  SegmentStats stats;
  const size_t begin = static_cast<size_t>(x);
  const size_t end = spec_.left_ops.size();
  stats.selectivity =
      ChainSelectivity(actual_chain_effective_selectivity_, begin, end);
  stats.expected_cost = ChainExpectedCost(
      spec_.left_ops, actual_chain_effective_selectivity_, begin, end);
  stats.ideal_time = ideal_time_;
  return stats;
}

SegmentStats CompiledQuery::LeafStats() const {
  if (is_multi_stream()) return SideLeafStats(Side::kLeft);
  return ChainSegmentStats(0);
}

int CompiledQuery::num_join_inputs() const {
  if (!is_multi_stream()) return 0;
  return 2 + static_cast<int>(spec_.extra_stages.size());
}

int CompiledQuery::num_join_stages() const {
  if (!is_multi_stream()) return 0;
  return 1 + static_cast<int>(spec_.extra_stages.size());
}

const OperatorSpec& CompiledQuery::StageJoin(int stage) const {
  AQSIOS_CHECK(is_multi_stream());
  AQSIOS_CHECK_GE(stage, 0);
  AQSIOS_CHECK_LT(stage, num_join_stages());
  if (stage == 0) return *spec_.join_op;
  return spec_.extra_stages[static_cast<size_t>(stage - 1)].join;
}

const std::vector<OperatorSpec>& CompiledQuery::SideOps(int input) const {
  AQSIOS_CHECK_GE(input, 0);
  AQSIOS_CHECK_LT(input, num_join_inputs());
  if (input == 0) return spec_.left_ops;
  if (input == 1) return spec_.right_ops;
  return spec_.extra_stages[static_cast<size_t>(input - 2)].side_ops;
}

const std::vector<double>& CompiledQuery::SideEffective(int input) const {
  AQSIOS_CHECK_GE(input, 0);
  AQSIOS_CHECK_LT(input, num_join_inputs());
  if (input == 0) return left_effective_selectivity_;
  if (input == 1) return right_effective_selectivity_;
  return stage_effective_selectivity_[static_cast<size_t>(input - 2)];
}

SimTime CompiledQuery::SideTau(int input) const {
  AQSIOS_CHECK_GE(input, 0);
  AQSIOS_CHECK_LT(input, num_join_inputs());
  if (input == 0) return spec_.left_mean_inter_arrival;
  if (input == 1) return spec_.right_mean_inter_arrival;
  return spec_.extra_stages[static_cast<size_t>(input - 2)]
      .mean_inter_arrival;
}

stream::StreamId CompiledQuery::JoinInputStream(int input) const {
  AQSIOS_CHECK_GE(input, 0);
  AQSIOS_CHECK_LT(input, num_join_inputs());
  if (input == 0) return spec_.left_stream;
  if (input == 1) return spec_.right_stream;
  return spec_.extra_stages[static_cast<size_t>(input - 2)].stream;
}

double CompiledQuery::SideSelectivity(int input) const {
  const std::vector<double>& effective = SideEffective(input);
  return ChainSelectivity(effective, 0, effective.size());
}

SimTime CompiledQuery::SideExpectedCost(int input) const {
  const std::vector<OperatorSpec>& ops = SideOps(input);
  return ChainExpectedCost(ops, SideEffective(input), 0, ops.size());
}

double CompiledQuery::SideSurvivorRate(int input) const {
  return SideSelectivity(input) / SideTau(input);
}

double CompiledQuery::StageOutputRate(int stage) const {
  AQSIOS_CHECK_GE(stage, 0);
  AQSIOS_CHECK_LT(stage, num_join_stages());
  // λ_s: composites per second produced by stage s. Each pair is generated
  // exactly once (by whichever member is processed second), so for time
  // windows the pair rate is λ_{s-1} · ρ_{s+1} · 2V_s, and for row windows
  // N_s residents face every arrival of either side: N_s · (λ_{s-1} +
  // ρ_{s+1}); both thinned by the match probability.
  double rate = SideSurvivorRate(0);
  for (int s = 0; s <= stage; ++s) {
    const OperatorSpec& join = StageJoin(s);
    const double stream_rate = SideSurvivorRate(s + 1);
    if (join.is_row_window()) {
      rate = join.selectivity * static_cast<double>(join.window_rows) *
             (rate + stream_rate);
    } else {
      rate *= stream_rate * 2.0 * join.window_seconds * join.selectivity;
    }
  }
  return rate;
}

/// Resident tuples on one side of a join stage: rate × V for time windows
/// (§5.2's occupancy estimate), the fixed row count for row windows.
double CompiledQuery::StageSideOccupancy(int stage, bool stream_side) const {
  const OperatorSpec& join = StageJoin(stage);
  if (join.is_row_window()) {
    return static_cast<double>(join.window_rows);
  }
  const double rate =
      stream_side
          ? SideSurvivorRate(stage + 1)
          : (stage == 0 ? SideSurvivorRate(0) : StageOutputRate(stage - 1));
  return rate * join.window_seconds;
}

double CompiledQuery::StageCompositeAmplification(int stage) const {
  // Composites crossing stage s from the accumulated side meet the
  // stream-side residents, thinned by the match probability.
  return StageSideOccupancy(stage, /*stream_side=*/true) *
         StageJoin(stage).selectivity;
}

SimTime CompiledQuery::DownstreamCompositeCost(int stage) const {
  // Expected processing a stage-s output composite still incurs: the next
  // stage's join charge plus, per generated composite, the cost after that;
  // after the last stage, the (discounted) common segment.
  const SimTime common_cost =
      ChainExpectedCost(spec_.common_ops, common_effective_selectivity_, 0,
                        spec_.common_ops.size());
  SimTime cost = common_cost;
  for (int s = num_join_stages() - 1; s > stage; --s) {
    cost = StageJoin(s).cost() + StageCompositeAmplification(s) * cost;
  }
  return cost;
}

double CompiledQuery::ExpectedWindowPartners(Side side) const {
  AQSIOS_CHECK(is_multi_stream());
  // Partners of a `side` tuple of the base join live in the *opposite*
  // hash table: S_other · V / τ_other (§5.2), or the row count for row
  // windows.
  return StageSideOccupancy(0, /*stream_side=*/side == Side::kLeft);
}

SegmentStats CompiledQuery::JoinInputStats(int input) const {
  AQSIOS_CHECK(is_multi_stream());
  AQSIOS_CHECK_GE(input, 0);
  AQSIOS_CHECK_LT(input, num_join_inputs());
  const int stage = input <= 1 ? 0 : input - 1;
  const OperatorSpec& join = StageJoin(stage);

  // Resident partners this input's survivors probe: the opposite table's
  // occupancy (stream-side residents for input 0; accumulated-composite
  // residents for stream inputs j >= 1).
  const double opposite_occupancy =
      StageSideOccupancy(stage, /*stream_side=*/input == 0);
  const double generated = opposite_occupancy * join.selectivity;

  // Amplification by all later stages, then the common segment.
  double downstream_selectivity = ChainSelectivity(
      common_effective_selectivity_, 0, common_effective_selectivity_.size());
  for (int s = stage + 1; s < num_join_stages(); ++s) {
    downstream_selectivity *= StageCompositeAmplification(s);
  }

  const double side_selectivity = SideSelectivity(input);
  SegmentStats stats;
  // S_x: recursive generalization of §5.2's
  //   S_x = S_side · S_J · (S_other · V/τ) · S_C.
  stats.selectivity = side_selectivity * generated * downstream_selectivity;
  // C̄_x = C_side + S_side·C_J + S_side·(generated)·C_downstream.
  stats.expected_cost =
      SideExpectedCost(input) +
      side_selectivity *
          (join.cost() + generated * DownstreamCompositeCost(stage));
  stats.ideal_time = ideal_time_;
  return stats;
}

SegmentStats CompiledQuery::SideLeafStats(Side side) const {
  AQSIOS_CHECK(is_multi_stream());
  return JoinInputStats(side == Side::kLeft ? 0 : 1);
}

SimTime CompiledQuery::TotalSideCost(int input) const {
  const std::vector<OperatorSpec>& ops = SideOps(input);
  return ChainTotalCost(ops, 0, ops.size());
}

SimTime CompiledQuery::TotalSideCost(Side side) const {
  AQSIOS_CHECK(is_multi_stream());
  return TotalSideCost(side == Side::kLeft ? 0 : 1);
}

SimTime CompiledQuery::TotalCommonCost() const {
  AQSIOS_CHECK(is_multi_stream());
  return ChainTotalCost(spec_.common_ops, 0, spec_.common_ops.size());
}

SimTime CompiledQuery::JoinCost() const {
  AQSIOS_CHECK(is_multi_stream());
  return spec_.join_op->cost();
}

SimTime CompiledQuery::IdealCompositePathCost(int trigger_input) const {
  AQSIOS_CHECK(is_multi_stream());
  AQSIOS_CHECK_GE(trigger_input, 0);
  AQSIOS_CHECK_LT(trigger_input, num_join_inputs());
  // The trigger constituent runs its side segment, the join it enters, and
  // every later stage's join, then the common segment.
  const int first_stage = trigger_input <= 1 ? 0 : trigger_input - 1;
  SimTime cost = TotalSideCost(trigger_input) + TotalCommonCost();
  for (int s = first_stage; s < num_join_stages(); ++s) {
    cost += StageJoin(s).cost();
  }
  return cost;
}

SimTime CompiledQuery::IdealCompositePathCost(Side trigger_side) const {
  return IdealCompositePathCost(trigger_side == Side::kLeft ? 0 : 1);
}

SimTime CompiledQuery::ExpectedWorkPerArrival(stream::StreamId s) const {
  if (!is_multi_stream()) {
    return s == spec_.left_stream ? LeafStats().expected_cost : 0.0;
  }
  SimTime work = 0.0;
  for (int input = 0; input < num_join_inputs(); ++input) {
    if (JoinInputStream(input) == s) {
      work += JoinInputStats(input).expected_cost;
    }
  }
  return work;
}

SimTime CompiledQuery::ActualExpectedWorkPerArrival(
    stream::StreamId s) const {
  if (!is_multi_stream()) {
    return s == spec_.left_stream ? ActualChainSegmentStats(0).expected_cost
                                  : 0.0;
  }
  // Multi-stream drift is not modeled; assumed stats are exact there.
  return ExpectedWorkPerArrival(s);
}

SimTime CompiledQuery::MinOperatorCost() const {
  SimTime min_cost = std::numeric_limits<SimTime>::infinity();
  auto scan = [&min_cost](const std::vector<OperatorSpec>& ops) {
    for (const OperatorSpec& op : ops) min_cost = std::min(min_cost, op.cost());
  };
  scan(spec_.left_ops);
  scan(spec_.right_ops);
  scan(spec_.common_ops);
  if (spec_.join_op.has_value()) {
    min_cost = std::min(min_cost, spec_.join_op->cost());
  }
  for (const JoinStage& stage : spec_.extra_stages) {
    scan(stage.side_ops);
    min_cost = std::min(min_cost, stage.join.cost());
  }
  return min_cost;
}

}  // namespace aqsios::query
