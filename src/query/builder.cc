#include "query/builder.h"

#include "common/check.h"

namespace aqsios::query {

QueryBuilder::QueryBuilder(stream::StreamId stream) {
  spec_.left_stream = stream;
}

std::vector<OperatorSpec>* QueryBuilder::CurrentSegment() {
  switch (segment_) {
    case Segment::kLeft:
      return &spec_.left_ops;
    case Segment::kRight:
      return &spec_.right_ops;
    case Segment::kStage:
      return &spec_.extra_stages.back().side_ops;
    case Segment::kCommon:
      return &spec_.common_ops;
  }
  AQSIOS_CHECK(false) << "unreachable segment";
  return nullptr;
}

QueryBuilder& QueryBuilder::Select(double cost_ms, double selectivity) {
  CurrentSegment()->push_back(MakeSelect(cost_ms, selectivity));
  return *this;
}

QueryBuilder& QueryBuilder::StoredJoin(double cost_ms, double selectivity) {
  CurrentSegment()->push_back(MakeStoredJoin(cost_ms, selectivity));
  return *this;
}

QueryBuilder& QueryBuilder::Project(double cost_ms) {
  CurrentSegment()->push_back(MakeProject(cost_ms));
  return *this;
}

QueryBuilder& QueryBuilder::WithActualSelectivity(double actual) {
  std::vector<OperatorSpec>* segment = CurrentSegment();
  AQSIOS_CHECK(!segment->empty())
      << "WithActualSelectivity needs a preceding operator";
  segment->back().actual_selectivity = actual;
  return *this;
}

QueryBuilder& QueryBuilder::WindowJoinWith(stream::StreamId stream,
                                           double cost_ms,
                                           double match_probability,
                                           double window_seconds,
                                           SimTime mean_inter_arrival) {
  AQSIOS_CHECK(segment_ == Segment::kLeft && !spec_.join_op.has_value())
      << "WindowJoinWith must be the first join; use ThenWindowJoinWith for "
         "further stages";
  spec_.right_stream = stream;
  spec_.join_op = MakeWindowJoin(cost_ms, match_probability, window_seconds);
  spec_.right_mean_inter_arrival = mean_inter_arrival;
  segment_ = Segment::kRight;
  return *this;
}

QueryBuilder& QueryBuilder::RowWindowJoinWith(stream::StreamId stream,
                                              double cost_ms,
                                              double match_probability,
                                              int64_t window_rows,
                                              SimTime mean_inter_arrival) {
  AQSIOS_CHECK(segment_ == Segment::kLeft && !spec_.join_op.has_value())
      << "RowWindowJoinWith must be the first join";
  spec_.right_stream = stream;
  spec_.join_op =
      MakeRowWindowJoin(cost_ms, match_probability, window_rows);
  spec_.right_mean_inter_arrival = mean_inter_arrival;
  segment_ = Segment::kRight;
  return *this;
}

QueryBuilder& QueryBuilder::ThenWindowJoinWith(stream::StreamId stream,
                                               double cost_ms,
                                               double match_probability,
                                               double window_seconds,
                                               SimTime mean_inter_arrival) {
  AQSIOS_CHECK(spec_.join_op.has_value())
      << "ThenWindowJoinWith needs a preceding WindowJoinWith";
  AQSIOS_CHECK(segment_ == Segment::kRight || segment_ == Segment::kStage)
      << "ThenWindowJoinWith must come before Common()";
  JoinStage stage;
  stage.stream = stream;
  stage.join = MakeWindowJoin(cost_ms, match_probability, window_seconds);
  stage.mean_inter_arrival = mean_inter_arrival;
  spec_.extra_stages.push_back(std::move(stage));
  segment_ = Segment::kStage;
  return *this;
}

QueryBuilder& QueryBuilder::Common() {
  AQSIOS_CHECK(spec_.join_op.has_value())
      << "Common() only applies to join queries; single-stream operators "
         "already form one chain";
  segment_ = Segment::kCommon;
  return *this;
}

QueryBuilder& QueryBuilder::LeftMeanInterArrival(SimTime tau) {
  spec_.left_mean_inter_arrival = tau;
  return *this;
}

QueryBuilder& QueryBuilder::CostClass(int cost_class) {
  spec_.cost_class = cost_class;
  return *this;
}

QueryBuilder& QueryBuilder::ClassSelectivity(double selectivity) {
  spec_.class_selectivity = selectivity;
  return *this;
}

QuerySpec QueryBuilder::Build(SelectivityMode mode) const {
  // Compile once to run the full validation suite; discard the result.
  const CompiledQuery validation(spec_, mode);
  (void)validation;
  return spec_;
}

}  // namespace aqsios::query
