#include "query/workload.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "stream/trace.h"

namespace aqsios::query {
namespace {

std::unique_ptr<stream::ArrivalProcess> MakeProcess(
    const WorkloadConfig& config, uint64_t seed) {
  switch (config.arrival_pattern) {
    case ArrivalPattern::kOnOff:
      return std::make_unique<stream::OnOffArrivalProcess>(config.onoff, seed);
    case ArrivalPattern::kPoisson:
      return std::make_unique<stream::PoissonArrivalProcess>(
          config.poisson_rate, seed);
    case ArrivalPattern::kDeterministic:
      return std::make_unique<stream::DeterministicArrivalProcess>(
          config.deterministic_interval, config.deterministic_interval);
    case ArrivalPattern::kTraceFile: {
      AQSIOS_CHECK(!config.trace_path.empty())
          << "kTraceFile needs WorkloadConfig::trace_path";
      auto timestamps = stream::ReadTrace(config.trace_path);
      AQSIOS_CHECK(timestamps.ok())
          << "cannot load trace: " << timestamps.status();
      return std::make_unique<stream::TraceArrivalProcess>(
          std::move(timestamps).value());
    }
  }
  AQSIOS_CHECK(false) << "unknown arrival pattern";
  return nullptr;
}

/// Draws a selectivity, optionally snapped to a 10-point grid so query
/// classes are well defined.
double DrawSelectivity(const WorkloadConfig& config, Rng& rng) {
  if (!config.quantize_selectivity) {
    return rng.Uniform(config.selectivity_min, config.selectivity_max);
  }
  constexpr int kGridPoints = 10;
  const int level = static_cast<int>(rng.UniformInt(0, kGridPoints - 1));
  const double step =
      (config.selectivity_max - config.selectivity_min) / (kGridPoints - 1);
  return config.selectivity_min + step * level;
}

struct DrawnQuery {
  int cost_class = 0;
  double selectivity = 1.0;
  double window_seconds = 0.0;
  /// Windows of the extra join stages (multi-stream with > 2 streams).
  std::vector<double> extra_windows;
  /// Multiplier from assumed to actual selectivity (1 = exact statistics).
  double drift_factor = 1.0;

  double ActualSelectivity() const {
    return std::clamp(selectivity * drift_factor, 0.01, 1.0);
  }
};

/// Applies a drawn drift factor to a filter operator.
OperatorSpec WithDrift(OperatorSpec op, const DrawnQuery& d) {
  if (d.drift_factor != 1.0) op.actual_selectivity = d.ActualSelectivity();
  return op;
}

/// Builds the full spec list for a given scale factor K (ms).
std::vector<QuerySpec> BuildSpecs(const WorkloadConfig& config,
                                  const std::vector<DrawnQuery>& drawn,
                                  const std::vector<DrawnQuery>& shared_leaf,
                                  const std::vector<int>& group_of_query,
                                  const std::vector<SimTime>& taus,
                                  double k_ms) {
  const SimTime tau_left = taus[0];
  const SimTime tau_right = taus.size() > 1 ? taus[1] : 1.0;
  std::vector<QuerySpec> specs;
  specs.reserve(drawn.size());
  for (size_t q = 0; q < drawn.size(); ++q) {
    const DrawnQuery& d = drawn[q];
    const double cost_ms = k_ms * std::pow(2.0, d.cost_class);
    QuerySpec spec;
    spec.id = static_cast<QueryId>(q);
    spec.cost_class = d.cost_class;
    spec.class_selectivity = d.selectivity;
    if (config.multi_stream) {
      spec.left_stream = 0;
      spec.right_stream = 1;
      spec.left_ops = {MakeSelect(cost_ms, d.selectivity)};
      spec.right_ops = {MakeSelect(cost_ms, d.selectivity)};
      spec.join_op =
          MakeWindowJoin(cost_ms, d.selectivity, d.window_seconds);
      spec.common_ops = {MakeProject(cost_ms)};
      spec.left_mean_inter_arrival = tau_left;
      spec.right_mean_inter_arrival = tau_right;
      for (size_t extra = 0; extra < d.extra_windows.size(); ++extra) {
        JoinStage stage;
        stage.stream = static_cast<stream::StreamId>(2 + extra);
        stage.side_ops = {MakeSelect(cost_ms, d.selectivity)};
        stage.join = MakeWindowJoin(cost_ms, d.selectivity,
                                    d.extra_windows[extra]);
        stage.mean_inter_arrival = taus[2 + extra];
        spec.extra_stages.push_back(std::move(stage));
      }
    } else {
      spec.left_stream = 0;
      const int group = group_of_query[q];
      if (group >= 0) {
        const DrawnQuery& leaf = shared_leaf[static_cast<size_t>(group)];
        const double leaf_cost_ms = k_ms * std::pow(2.0, leaf.cost_class);
        spec.left_ops = {
            WithDrift(MakeSelect(leaf_cost_ms, leaf.selectivity), leaf),
            WithDrift(MakeStoredJoin(cost_ms, d.selectivity), d),
            MakeProject(cost_ms)};
      } else {
        spec.left_ops = {WithDrift(MakeSelect(cost_ms, d.selectivity), d),
                         WithDrift(MakeStoredJoin(cost_ms, d.selectivity), d),
                         MakeProject(cost_ms)};
      }
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

int NumStreams(const WorkloadConfig& config) {
  return config.multi_stream ? config.join_streams : 1;
}

GlobalPlan CompilePlan(const WorkloadConfig& config,
                       std::vector<QuerySpec> specs,
                       const std::vector<SharingGroup>& groups) {
  std::vector<CompiledQuery> queries;
  queries.reserve(specs.size());
  for (QuerySpec& spec : specs) {
    queries.emplace_back(std::move(spec), config.selectivity_mode);
  }
  return GlobalPlan(std::move(queries), groups, NumStreams(config));
}

}  // namespace

const char* ArrivalPatternName(ArrivalPattern pattern) {
  switch (pattern) {
    case ArrivalPattern::kOnOff:
      return "onoff";
    case ArrivalPattern::kPoisson:
      return "poisson";
    case ArrivalPattern::kDeterministic:
      return "deterministic";
    case ArrivalPattern::kTraceFile:
      return "trace_file";
  }
  return "unknown";
}

Workload GenerateWorkload(const WorkloadConfig& config) {
  AQSIOS_CHECK_GT(config.num_queries, 0);
  AQSIOS_CHECK_GT(config.num_cost_classes, 0);
  AQSIOS_CHECK_GT(config.utilization, 0.0);
  AQSIOS_CHECK_GT(config.num_arrivals, 1);
  AQSIOS_CHECK_GT(config.selectivity_min, 0.0);
  AQSIOS_CHECK_LE(config.selectivity_max, 1.0);
  AQSIOS_CHECK_LE(config.selectivity_min, config.selectivity_max);
  if (config.sharing_group_size >= 2) {
    AQSIOS_CHECK(!config.multi_stream)
        << "operator sharing is modeled for single-stream workloads";
  }

  Rng rng(config.seed);
  const uint64_t arrivals_seed = rng.Fork();
  const uint64_t content_seed = rng.Fork();

  // --- Arrivals -----------------------------------------------------------
  if (config.multi_stream) AQSIOS_CHECK_GE(config.join_streams, 2);
  const int num_streams = NumStreams(config);
  std::vector<std::vector<stream::Arrival>> per_stream;
  Rng arrivals_rng(arrivals_seed);
  for (int s = 0; s < num_streams; ++s) {
    auto process = MakeProcess(config, arrivals_rng.Fork());
    per_stream.push_back(stream::GenerateArrivals(
        *process, s, config.num_arrivals / num_streams, arrivals_rng.Fork(),
        config.num_join_keys));
  }
  stream::ArrivalTable arrivals =
      stream::MergeArrivalTables(std::move(per_stream));
  AQSIOS_CHECK_GT(arrivals.size(), 1);

  std::vector<SimTime> taus(static_cast<size_t>(num_streams), 1.0);
  for (int s = 0; s < num_streams; ++s) {
    taus[static_cast<size_t>(s)] = arrivals.MeanInterArrival(s);
    AQSIOS_CHECK_GT(taus[static_cast<size_t>(s)], 0.0);
  }

  // --- Query population ---------------------------------------------------
  Rng content_rng(content_seed);
  std::vector<DrawnQuery> drawn(static_cast<size_t>(config.num_queries));
  for (DrawnQuery& d : drawn) {
    d.cost_class =
        static_cast<int>(content_rng.UniformInt(0, config.num_cost_classes - 1));
    d.selectivity = DrawSelectivity(config, content_rng);
    if (config.multi_stream) {
      d.window_seconds = content_rng.Uniform(config.window_min_seconds,
                                             config.window_max_seconds);
      for (int extra = 0; extra < config.join_streams - 2; ++extra) {
        d.extra_windows.push_back(content_rng.Uniform(
            config.window_min_seconds, config.window_max_seconds));
      }
    }
    if (config.selectivity_misestimation > 0.0) {
      AQSIOS_CHECK(!config.multi_stream)
          << "selectivity drift is modeled for single-stream workloads";
      d.drift_factor =
          content_rng.Uniform(1.0 - config.selectivity_misestimation,
                              1.0 + config.selectivity_misestimation);
    }
  }

  std::vector<int> group_of_query(drawn.size(), -1);
  std::vector<SharingGroup> groups;
  std::vector<DrawnQuery> shared_leaf;
  if (config.sharing_group_size >= 2) {
    const int group_size = config.sharing_group_size;
    for (int start = 0; start + group_size <= config.num_queries;
         start += group_size) {
      SharingGroup group;
      group.id = static_cast<int>(groups.size());
      for (int q = start; q < start + group_size; ++q) {
        group.members.push_back(static_cast<QueryId>(q));
        group_of_query[static_cast<size_t>(q)] = group.id;
      }
      DrawnQuery leaf;
      leaf.cost_class =
          static_cast<int>(content_rng.UniformInt(0, config.num_cost_classes - 1));
      leaf.selectivity = DrawSelectivity(config, content_rng);
      if (config.selectivity_misestimation > 0.0) {
        leaf.drift_factor =
            content_rng.Uniform(1.0 - config.selectivity_misestimation,
                                1.0 + config.selectivity_misestimation);
      }
      shared_leaf.push_back(leaf);
      groups.push_back(std::move(group));
    }
  }

  // --- Calibration of K (§8) ----------------------------------------------
  // All operator costs are linear in K, so expected work per arrival with
  // K = k equals k times the work with K = 1 (the window-occupancy term
  // V/τ does not depend on K).
  GlobalPlan unit_plan = CompilePlan(
      config,
      BuildSpecs(config, drawn, shared_leaf, group_of_query, taus,
                 /*k_ms=*/1.0),
      groups);
  // The true load is what the system actually executes, so calibration uses
  // the actual selectivities (identical to the assumed ones without drift).
  double unit_work_rate = 0.0;  // fraction of CPU consumed with K = 1
  for (int s = 0; s < num_streams; ++s) {
    unit_work_rate += unit_plan.ActualExpectedWorkPerArrival(s) /
                      taus[static_cast<size_t>(s)];
  }
  AQSIOS_CHECK_GT(unit_work_rate, 0.0);
  const double k_ms = config.utilization / unit_work_rate;

  Workload workload;
  workload.plan = CompilePlan(
      config,
      BuildSpecs(config, drawn, shared_leaf, group_of_query, taus, k_ms),
      groups);
  workload.arrivals = std::move(arrivals);
  workload.scale_factor_k_ms = k_ms;
  workload.expected_utilization = k_ms * unit_work_rate;
  workload.selectivity_mode = config.selectivity_mode;
  return workload;
}

}  // namespace aqsios::query
