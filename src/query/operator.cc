#include "query/operator.h"

#include <sstream>

namespace aqsios::query {

const char* OperatorKindName(OperatorKind kind) {
  switch (kind) {
    case OperatorKind::kSelect:
      return "select";
    case OperatorKind::kStoredJoin:
      return "stored_join";
    case OperatorKind::kWindowJoin:
      return "window_join";
    case OperatorKind::kProject:
      return "project";
  }
  return "unknown";
}

std::string OperatorSpec::ToString() const {
  std::ostringstream os;
  os << OperatorKindName(kind) << "(c=" << cost_ms << "ms, s=" << selectivity;
  if (kind == OperatorKind::kWindowJoin) {
    if (is_row_window()) {
      os << ", V=" << window_rows << " rows";
    } else {
      os << ", V=" << window_seconds << "s";
    }
  }
  os << ")";
  return os.str();
}

OperatorSpec MakeSelect(double cost_ms, double selectivity) {
  OperatorSpec spec;
  spec.kind = OperatorKind::kSelect;
  spec.cost_ms = cost_ms;
  spec.selectivity = selectivity;
  return spec;
}

OperatorSpec MakeStoredJoin(double cost_ms, double selectivity) {
  OperatorSpec spec;
  spec.kind = OperatorKind::kStoredJoin;
  spec.cost_ms = cost_ms;
  spec.selectivity = selectivity;
  return spec;
}

OperatorSpec MakeProject(double cost_ms) {
  OperatorSpec spec;
  spec.kind = OperatorKind::kProject;
  spec.cost_ms = cost_ms;
  spec.selectivity = 1.0;
  return spec;
}

OperatorSpec MakeWindowJoin(double cost_ms, double match_probability,
                            double window_seconds) {
  OperatorSpec spec;
  spec.kind = OperatorKind::kWindowJoin;
  spec.cost_ms = cost_ms;
  spec.selectivity = match_probability;
  spec.window_seconds = window_seconds;
  return spec;
}

OperatorSpec MakeRowWindowJoin(double cost_ms, double match_probability,
                               int64_t window_rows) {
  OperatorSpec spec;
  spec.kind = OperatorKind::kWindowJoin;
  spec.cost_ms = cost_ms;
  spec.selectivity = match_probability;
  spec.window_rows = window_rows;
  return spec;
}

}  // namespace aqsios::query
