#include "query/plan.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace aqsios::query {

GlobalPlan::GlobalPlan(std::vector<CompiledQuery> queries,
                       std::vector<SharingGroup> sharing_groups,
                       int num_streams)
    : queries_(std::move(queries)),
      sharing_groups_(std::move(sharing_groups)),
      num_streams_(num_streams) {
  AQSIOS_CHECK_GT(num_streams_, 0);
  // Queries must be densely numbered so QueryId doubles as an index.
  for (size_t i = 0; i < queries_.size(); ++i) {
    AQSIOS_CHECK_EQ(queries_[i].id(), static_cast<QueryId>(i))
        << "queries must have dense ids in order";
  }
  group_of_query_.assign(queries_.size(), -1);
  for (size_t g = 0; g < sharing_groups_.size(); ++g) {
    const SharingGroup& group = sharing_groups_[g];
    AQSIOS_CHECK_GE(group.members.size(), 2u)
        << "sharing group " << group.id << " needs at least two members";
    const CompiledQuery& first = query(group.members.front());
    AQSIOS_CHECK(!first.is_multi_stream())
        << "sharing groups support single-stream queries";
    const OperatorSpec& shared = first.spec().left_ops.front();
    for (QueryId member : group.members) {
      const CompiledQuery& q = query(member);
      AQSIOS_CHECK(!q.is_multi_stream());
      AQSIOS_CHECK_EQ(q.spec().left_stream, first.spec().left_stream)
          << "sharing group members must read the same stream";
      const OperatorSpec& leaf = q.spec().left_ops.front();
      AQSIOS_CHECK(leaf.kind == shared.kind &&
                   leaf.cost_ms == shared.cost_ms &&
                   leaf.selectivity == shared.selectivity)
          << "sharing group members must have identical leaf operators";
      AQSIOS_CHECK_EQ(group_of_query_[static_cast<size_t>(member)], -1)
          << "query " << member << " is in two sharing groups";
      group_of_query_[static_cast<size_t>(member)] = static_cast<int>(g);
    }
  }
}

SimTime GlobalPlan::MinOperatorCost() const {
  SimTime min_cost = std::numeric_limits<SimTime>::infinity();
  for (const CompiledQuery& q : queries_) {
    min_cost = std::min(min_cost, q.MinOperatorCost());
  }
  return min_cost;
}

SimTime GlobalPlan::ExpectedWorkPerArrival(stream::StreamId stream) const {
  SimTime work = 0.0;
  for (const CompiledQuery& q : queries_) {
    work += q.ExpectedWorkPerArrival(stream);
  }
  // Shared leaf operators run once per group, not once per member
  // (§7: S̄C_x = Σ C̄_x^i − (N−1)·c_x).
  for (const SharingGroup& group : sharing_groups_) {
    const CompiledQuery& first = query(group.members.front());
    if (first.spec().left_stream != stream) continue;
    const SimTime shared_cost = first.spec().left_ops.front().cost();
    work -= static_cast<double>(group.members.size() - 1) * shared_cost;
  }
  return work;
}

SimTime GlobalPlan::ActualExpectedWorkPerArrival(
    stream::StreamId stream) const {
  SimTime work = 0.0;
  for (const CompiledQuery& q : queries_) {
    work += q.ActualExpectedWorkPerArrival(stream);
  }
  for (const SharingGroup& group : sharing_groups_) {
    const CompiledQuery& first = query(group.members.front());
    if (first.spec().left_stream != stream) continue;
    const SimTime shared_cost = first.spec().left_ops.front().cost();
    work -= static_cast<double>(group.members.size() - 1) * shared_cost;
  }
  return work;
}

double GlobalPlan::ExpectedOutputsPerArrival(stream::StreamId stream) const {
  double outputs = 0.0;
  for (const CompiledQuery& q : queries_) {
    if (!q.is_multi_stream()) {
      if (q.spec().left_stream == stream) outputs += q.LeafStats().selectivity;
      continue;
    }
    if (q.spec().left_stream == stream) {
      outputs += q.SideLeafStats(Side::kLeft).selectivity;
    }
    if (q.spec().right_stream == stream) {
      outputs += q.SideLeafStats(Side::kRight).selectivity;
    }
  }
  return outputs;
}

}  // namespace aqsios::query
