// Operator descriptors for continuous-query plans.
//
// Following the paper's system model (§2), every operator is characterized by
// a processing cost c_x (time to process one input tuple) and a selectivity
// s_x (expected number of output tuples per processed input tuple).

#ifndef AQSIOS_QUERY_OPERATOR_H_
#define AQSIOS_QUERY_OPERATOR_H_

#include <string>

#include "common/sim_time.h"

namespace aqsios::query {

enum class OperatorKind {
  /// Predicate filter; selectivity in (0, 1].
  kSelect,
  /// Join with a stored relation (paper §8, single-stream experiments);
  /// behaves as a filter with selectivity in (0, 1].
  kStoredJoin,
  /// Time-based sliding-window symmetric hash join between two streams
  /// (§5); `selectivity` is the per-candidate-pair match probability and
  /// `window_seconds` the window interval V.
  kWindowJoin,
  /// Projection; selectivity 1.
  kProject,
};

const char* OperatorKindName(OperatorKind kind);

/// Static description of one operator.
struct OperatorSpec {
  OperatorKind kind = OperatorKind::kSelect;
  /// Processing cost c_x per input tuple, in milliseconds (paper units).
  double cost_ms = 1.0;
  /// Selectivity s_x: pass probability for filters, per-pair match
  /// probability for window joins. Filters require (0, 1]; window joins may
  /// exceed 1 only via window occupancy, not via this field.
  double selectivity = 1.0;
  /// Window interval V in seconds; meaningful for kWindowJoin only.
  /// Exactly one of window_seconds / window_rows must be positive.
  double window_seconds = 0.0;

  /// Tuple-count window: each side retains its last `window_rows` surviving
  /// tuples (CQL ROWS windows). Alternative to window_seconds.
  int64_t window_rows = 0;

  /// True when this window join is tuple-count based.
  bool is_row_window() const { return window_rows > 0; }

  /// The selectivity the operator actually exhibits at execution time; -1
  /// means "same as `selectivity`". When they differ, the optimizer's
  /// assumed statistics (`selectivity`, used for all priorities) are stale —
  /// the situation the adaptive statistics monitor corrects (§10 discusses
  /// running in such dynamic environments).
  double actual_selectivity = -1.0;

  /// Execution-time selectivity (falls back to the assumed one).
  double EffectiveActualSelectivity() const {
    return actual_selectivity >= 0.0 ? actual_selectivity : selectivity;
  }

  /// Cost in SimTime seconds.
  SimTime cost() const { return MillisToSimTime(cost_ms); }

  std::string ToString() const;
};

/// Convenience constructors.
OperatorSpec MakeSelect(double cost_ms, double selectivity);
OperatorSpec MakeStoredJoin(double cost_ms, double selectivity);
OperatorSpec MakeProject(double cost_ms);
OperatorSpec MakeWindowJoin(double cost_ms, double match_probability,
                            double window_seconds);
OperatorSpec MakeRowWindowJoin(double cost_ms, double match_probability,
                               int64_t window_rows);

}  // namespace aqsios::query

#endif  // AQSIOS_QUERY_OPERATOR_H_
