// Continuous-query plans and their scheduling statistics.
//
// A CompiledQuery augments a QuerySpec with the characterizing parameters of
// the paper (§2 and §5.2): per-segment global selectivity S_x, global average
// cost C̄_x, and the ideal total processing time T_k, from which every
// scheduling policy derives its priorities:
//
//   output rate     GR_x = S_x / C̄_x                       (HR, Eq. 4)
//   normalized rate V_x  = S_x / (C̄_x · T_k)               (HNR, Eq. 3)
//   BSD static part Φ_x  = S_x / (C̄_x · T_k²)              (BSD, §6.2.1)

#ifndef AQSIOS_QUERY_QUERY_H_
#define AQSIOS_QUERY_QUERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "query/operator.h"
#include "stream/tuple.h"

namespace aqsios::query {

using QueryId = int32_t;

/// How operator selectivities are realized at execution time.
enum class SelectivityMode {
  /// Paper §8 default: all filters of a query are predicates over the same
  /// synthetic uniform attribute, so they are perfectly correlated — the
  /// first (most selective) predicate filters, later ones pass survivors.
  kCorrelatedAttribute,
  /// Each filter is an independent Bernoulli draw with its own selectivity.
  kIndependent,
};

const char* SelectivityModeName(SelectivityMode mode);

/// Which input stream of a two-stream query a tuple entered through.
enum class Side { kLeft, kRight };

/// An additional stream input of a left-deep multi-join query: a pre-join
/// filter segment over `stream` and the window join that combines the
/// accumulated composite with it (§5.2's "multiple join operators, defined
/// recursively").
struct JoinStage {
  stream::StreamId stream = 0;
  std::vector<OperatorSpec> side_ops;
  OperatorSpec join;
  /// Mean inter-arrival time τ of this stream (seconds).
  SimTime mean_inter_arrival = 1.0;
};

/// Static description of one continuous query.
///
/// Single-stream queries are a linear chain in `left_ops` (leaf first, root
/// last) with `join_op`, `right_ops`, `common_ops` unused. Two-stream
/// queries have left/right pre-join segments, a window-join operator, and a
/// post-join common segment (paper Figure 3); any segment may be empty.
/// Queries over three or more streams add one JoinStage per extra stream
/// (left-deep): the output of each stage joins the next stream before the
/// common segment runs.
struct QuerySpec {
  QueryId id = 0;
  stream::StreamId left_stream = 0;
  /// -1 marks a single-stream query.
  stream::StreamId right_stream = -1;

  std::vector<OperatorSpec> left_ops;
  std::vector<OperatorSpec> right_ops;
  std::optional<OperatorSpec> join_op;
  /// Third and later stream inputs (left-deep join pipeline).
  std::vector<JoinStage> extra_stages;
  std::vector<OperatorSpec> common_ops;

  /// Mean inter-arrival times τ of the input streams (seconds); used by the
  /// window-occupancy estimate S_R · V/τ_R in the multi-stream priority
  /// parameters (§5.2). Ignored for single-stream queries.
  SimTime left_mean_inter_arrival = 1.0;
  SimTime right_mean_inter_arrival = 1.0;

  /// Workload class metadata for per-class metrics (paper Figure 11).
  int cost_class = 0;
  double class_selectivity = 1.0;

  bool is_multi_stream() const { return right_stream >= 0; }
};

/// The characterizing parameters of an operator segment E_x (§2).
struct SegmentStats {
  /// Global selectivity S_x: expected tuples emitted at the root per tuple
  /// processed down the segment.
  double selectivity = 1.0;
  /// Global average cost C̄_x: expected time to process one tuple down the
  /// segment (selectivity-discounted), in seconds.
  SimTime expected_cost = 0.0;
  /// Ideal total processing time T_k of the owning query, in seconds.
  SimTime ideal_time = 0.0;

  /// HR priority (Eq. 4).
  double OutputRate() const { return selectivity / expected_cost; }
  /// HNR priority (Eq. 3).
  double NormalizedRate() const {
    return selectivity / (expected_cost * ideal_time);
  }
  /// Static component of the BSD priority (§6.2.1).
  double Phi() const {
    return selectivity / (expected_cost * ideal_time * ideal_time);
  }
};

/// A QuerySpec plus derived statistics. Immutable after construction.
class CompiledQuery {
 public:
  CompiledQuery(QuerySpec spec, SelectivityMode mode);

  const QuerySpec& spec() const { return spec_; }
  QueryId id() const { return spec_.id; }
  bool is_multi_stream() const { return spec_.is_multi_stream(); }
  SelectivityMode selectivity_mode() const { return mode_; }

  /// Ideal total processing time T_k (Definition 2 / Definition 6), seconds.
  SimTime ideal_time() const { return ideal_time_; }

  /// Number of operators in the single-stream chain.
  int chain_length() const { return static_cast<int>(spec_.left_ops.size()); }

  /// Effective (conditional) selectivity of chain operator x: the pass
  /// probability given the tuple reached x. Equal to the spec selectivity in
  /// independent mode; the min-chain conditional in correlated mode.
  double EffectiveChainSelectivity(int x) const;

  /// Stats of the single-stream segment E_x starting at chain position x
  /// (0 = leaf) and running to the root.
  SegmentStats ChainSegmentStats(int x) const;

  /// Like ChainSegmentStats but computed from the operators' *actual*
  /// execution-time selectivities (which may drift from the assumed ones,
  /// see OperatorSpec::actual_selectivity). What an oracle scheduler, the
  /// load calibration, and the adaptive monitor converge to.
  SegmentStats ActualChainSegmentStats(int x) const;

  /// Stats of the full leaf-to-root segment.
  SegmentStats LeafStats() const;

  /// Stats of the virtual segment E_LL or E_RR of a two-stream query (§5.2).
  SegmentStats SideLeafStats(Side side) const;

  /// Number of join stream inputs: 0 for single-stream queries, 2 + number
  /// of extra stages otherwise. Input 0 is the left stream, input 1 the
  /// right stream of the base join, input j >= 2 the stream of extra stage
  /// j-2.
  int num_join_inputs() const;

  /// Number of join stages (1 + extra stages) for multi-stream queries.
  int num_join_stages() const;

  /// The stream feeding join input `input`.
  stream::StreamId JoinInputStream(int input) const;

  /// Stats of the virtual operator segment rooted at join input `input`
  /// (the recursive generalization of SideLeafStats; equal to it for
  /// inputs 0/1 of a two-stream query).
  SegmentStats JoinInputStats(int input) const;

  /// Ideal processing cost of a composite tuple from the moment its
  /// triggering (latest-arriving) constituent arrives, assuming an idle
  /// system: C_side(trigger) + Σ_{stages the trigger passes} C_J + C_C.
  /// Used for the ideal departure time D_ideal in the multi-stream slowdown
  /// (§5.1.2).
  SimTime IdealCompositePathCost(int trigger_input) const;
  SimTime IdealCompositePathCost(Side trigger_side) const;

  /// Undiscounted total cost of the left / right / common segment and the
  /// join (components of Definition 6).
  SimTime TotalSideCost(Side side) const;
  SimTime TotalSideCost(int input) const;
  SimTime TotalCommonCost() const;
  SimTime JoinCost() const;
  /// Join operator of stage s (0 = the base join_op).
  const OperatorSpec& StageJoin(int stage) const;

  /// Expected number of partner tuples resident in the opposite hash table:
  /// S_other · V / τ_other (§5.2).
  double ExpectedWindowPartners(Side side) const;

  /// Expected total work this query induces per arrival on the given stream
  /// (C̄ of the corresponding leaf segment) under the *assumed* statistics.
  SimTime ExpectedWorkPerArrival(stream::StreamId stream) const;

  /// Expected work per arrival under the *actual* selectivities; equals
  /// ExpectedWorkPerArrival when nothing drifts. Load calibration uses this
  /// (the true load is what the system really executes).
  SimTime ActualExpectedWorkPerArrival(stream::StreamId stream) const;

  /// Smallest operator cost in the plan (seconds); scheduling-overhead unit.
  SimTime MinOperatorCost() const;

 private:
  void Validate() const;
  void ComputeDerived();

  QuerySpec spec_;
  SelectivityMode mode_;
  SimTime ideal_time_ = 0.0;
  /// Effective conditional selectivities of the single-stream chain.
  std::vector<double> chain_effective_selectivity_;
  /// Same, computed from the actual execution-time selectivities.
  std::vector<double> actual_chain_effective_selectivity_;
  /// Effective conditional selectivities of left/right/common segments.
  std::vector<double> left_effective_selectivity_;
  std::vector<double> right_effective_selectivity_;
  std::vector<double> common_effective_selectivity_;
  /// Effective selectivities of each extra stage's side segment.
  std::vector<std::vector<double>> stage_effective_selectivity_;

  /// Pre-join side operators / effective selectivities / τ of join input j.
  const std::vector<OperatorSpec>& SideOps(int input) const;
  const std::vector<double>& SideEffective(int input) const;
  SimTime SideTau(int input) const;
  /// Survivor probability of input j's side segment.
  double SideSelectivity(int input) const;
  /// Selectivity-discounted expected cost of input j's side segment.
  SimTime SideExpectedCost(int input) const;
  /// Rate (tuples/second) of survivors arriving at input j's join.
  double SideSurvivorRate(int input) const;
  /// Output rate (composites/second) of stage s (pairs within the window
  /// counted once); λ in the recursive §5.2 generalization.
  double StageOutputRate(int stage) const;
  /// Expected cost incurred by one composite emitted by stage s on its way
  /// to the root (joins of later stages plus the common segment).
  SimTime DownstreamCompositeCost(int stage) const;
  /// Expected composites produced per composite crossing stage s from the
  /// accumulated (left) side: resident stream-side partners × match prob.
  double StageCompositeAmplification(int stage) const;
  /// Resident tuples on one side of a join stage (time windows: rate × V;
  /// row windows: the row count).
  double StageSideOccupancy(int stage, bool stream_side) const;
};

/// Segment-level selectivity of a sub-chain given effective per-operator
/// selectivities (product of effective selectivities).
double ChainSelectivity(const std::vector<double>& effective, size_t begin,
                        size_t end);

/// Selectivity-discounted expected cost of processing one tuple through
/// ops[begin, end), with effective selectivities aligned to ops.
SimTime ChainExpectedCost(const std::vector<OperatorSpec>& ops,
                          const std::vector<double>& effective, size_t begin,
                          size_t end);

/// Sum of undiscounted operator costs of ops[begin, end).
SimTime ChainTotalCost(const std::vector<OperatorSpec>& ops, size_t begin,
                       size_t end);

/// Computes effective conditional selectivities from raw per-operator
/// selectivity values under the given mode.
std::vector<double> EffectiveSelectivitiesFromValues(
    const std::vector<double>& raw, SelectivityMode mode);

/// Computes effective conditional selectivities for a chain of filters under
/// the given mode (see CompiledQuery::EffectiveChainSelectivity).
std::vector<double> EffectiveSelectivities(const std::vector<OperatorSpec>& ops,
                                           SelectivityMode mode);

/// Same, from the operators' actual execution-time selectivities.
std::vector<double> ActualEffectiveSelectivities(
    const std::vector<OperatorSpec>& ops, SelectivityMode mode);

}  // namespace aqsios::query

#endif  // AQSIOS_QUERY_QUERY_H_
