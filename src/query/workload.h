// The paper's evaluation testbed workload (§8).
//
// Generates (a) a registered set of select–join–project continuous queries
// with uniformly assigned selectivities and exponentially spaced cost
// classes K·2^i, and (b) a stream arrival table (bursty On/Off by default,
// Poisson for multi-stream experiments). The cost scaling factor K is
// calibrated so that
//
//   utilization = Σ_k E[work per arrival of query k] / mean inter-arrival,
//
// exactly as §8 prescribes.

#ifndef AQSIOS_QUERY_WORKLOAD_H_
#define AQSIOS_QUERY_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "query/plan.h"
#include "stream/arrival_process.h"
#include "stream/tuple.h"

namespace aqsios::query {

enum class ArrivalPattern {
  /// Bursty MMPP On/Off traffic (LBL-PKT-4 stand-in; single-stream default).
  kOnOff,
  /// Poisson arrivals (multi-stream experiments, §9.1.7).
  kPoisson,
  /// Fixed-interval arrivals (tests and calibration checks).
  kDeterministic,
  /// Replay timestamps from `trace_path` (aqsios-trace format; convert a
  /// real LBL-PKT-4 file with trace_tool). Multi-stream workloads replay
  /// the same trace on every stream with per-stream attribute/key draws.
  kTraceFile,
};

const char* ArrivalPatternName(ArrivalPattern pattern);

struct WorkloadConfig {
  /// Number of registered continuous queries (paper: 500).
  int num_queries = 50;

  /// Number of cost classes; class i has operator cost K·2^i ms.
  int num_cost_classes = 5;

  /// Selectivity range for select/join operators (paper: [0.1, 1.0]).
  double selectivity_min = 0.1;
  double selectivity_max = 1.0;
  /// Quantize selectivities to multiples of (max-min)/9 so query classes are
  /// well defined for the per-class analysis (Figure 11).
  bool quantize_selectivity = true;

  /// Target utilization (system load); drives the K calibration.
  double utilization = 0.9;

  /// Statistics staleness: when > 0, every query's filter operators exhibit
  /// an *actual* selectivity that deviates from the assumed one by a
  /// uniform factor in [1-m, 1+m] (clamped to (0.01, 1]). Priorities use
  /// the assumed values; execution and load calibration use the actual
  /// ones. Exercises the adaptive statistics monitor.
  double selectivity_misestimation = 0.0;

  uint64_t seed = 42;

  SelectivityMode selectivity_mode = SelectivityMode::kCorrelatedAttribute;

  /// If >= 2, queries are grouped into sets of this size, each set sharing
  /// its select operator (§9.3 uses 10). Only for single-stream workloads.
  int sharing_group_size = 0;

  /// Two-stream window-join workload (§9.1.7) instead of single-stream.
  bool multi_stream = false;
  /// Number of joined streams for multi-stream workloads (>= 2); streams
  /// beyond the second become left-deep extra join stages (§5.2's
  /// recursive multi-join case).
  int join_streams = 2;
  double window_min_seconds = 1.0;
  double window_max_seconds = 10.0;

  /// Total arrivals across all streams.
  int64_t num_arrivals = 20000;

  ArrivalPattern arrival_pattern = ArrivalPattern::kOnOff;
  /// Burst shape of the On/Off process (mean rate is taken as-is; the load
  /// knob is the cost scale K, not the arrival rate).
  stream::OnOffConfig onoff;
  /// Per-stream Poisson rate (arrivals/second) for kPoisson.
  double poisson_rate = 1000.0;
  /// Fixed inter-arrival (seconds) for kDeterministic.
  double deterministic_interval = 0.001;
  /// Trace file for kTraceFile (see stream/trace.h). num_arrivals caps how
  /// much of the trace is replayed.
  std::string trace_path;

  /// Number of distinct join keys for window joins.
  int32_t num_join_keys = 100;
};

/// A generated workload: the compiled plan (costs already scaled by the
/// calibrated K) plus the arrival table it was calibrated against.
struct Workload {
  GlobalPlan plan;
  stream::ArrivalTable arrivals;
  /// Calibrated scaling factor K, in milliseconds.
  double scale_factor_k_ms = 0.0;
  /// The achieved (expected) utilization given K; equals the target up to
  /// floating-point rounding.
  double expected_utilization = 0.0;
  SelectivityMode selectivity_mode = SelectivityMode::kCorrelatedAttribute;
};

/// Generates the §8 testbed workload. Deterministic in config.seed.
Workload GenerateWorkload(const WorkloadConfig& config);

}  // namespace aqsios::query

#endif  // AQSIOS_QUERY_WORKLOAD_H_
