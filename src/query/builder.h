// Fluent builder for QuerySpecs.
//
// Assembling a QuerySpec by hand means filling parallel vectors in the
// right order; the builder makes application code read like the plan:
//
//   QuerySpec spec = QueryBuilder(/*stream=*/0)
//                        .Select(/*cost_ms=*/0.5, /*selectivity=*/0.2)
//                        .StoredJoin(1.0, 0.5)
//                        .Project(0.2)
//                        .Build();
//
//   QuerySpec join = QueryBuilder(0)
//                        .Select(0.5, 0.8)
//                        .WindowJoinWith(/*stream=*/1, /*cost_ms=*/1.0,
//                                        /*match_probability=*/0.3,
//                                        /*window_seconds=*/2.0)
//                        .Select(0.5, 0.9)   // right-side filter
//                        .ThenWindowJoinWith(2, 1.0, 0.3, 2.0)
//                        .Select(0.5, 0.9)   // third-stream filter
//                        .Common()
//                        .Project(0.2)
//                        .Build();
//
// Operators added before the first join go to the left segment; after a
// join, to that join's stream-side segment; after Common(), to the common
// segment. Build() validates by compiling once.

#ifndef AQSIOS_QUERY_BUILDER_H_
#define AQSIOS_QUERY_BUILDER_H_

#include "query/query.h"

namespace aqsios::query {

class QueryBuilder {
 public:
  /// Starts a query reading `stream`.
  explicit QueryBuilder(stream::StreamId stream);

  /// Appends a selection to the current segment.
  QueryBuilder& Select(double cost_ms, double selectivity);

  /// Appends a stored-relation join (filter semantics) to the current
  /// segment.
  QueryBuilder& StoredJoin(double cost_ms, double selectivity);

  /// Appends a projection to the current segment.
  QueryBuilder& Project(double cost_ms);

  /// Declares the operator's execution-time selectivity to differ from the
  /// assumed one just added (statistics-drift model). Applies to the most
  /// recently added filter operator.
  QueryBuilder& WithActualSelectivity(double actual);

  /// Joins the plan so far with `stream` through a time-based sliding
  /// window; subsequent filter operators target the new stream's pre-join
  /// segment. `mean_inter_arrival` is the stream's τ used by the §5.2
  /// priority statistics.
  QueryBuilder& WindowJoinWith(stream::StreamId stream, double cost_ms,
                               double match_probability,
                               double window_seconds,
                               SimTime mean_inter_arrival = 1.0);

  /// Like WindowJoinWith but with a tuple-count (ROWS) window.
  QueryBuilder& RowWindowJoinWith(stream::StreamId stream, double cost_ms,
                                  double match_probability,
                                  int64_t window_rows,
                                  SimTime mean_inter_arrival = 1.0);

  /// Adds a further left-deep join stage (three or more streams).
  QueryBuilder& ThenWindowJoinWith(stream::StreamId stream, double cost_ms,
                                   double match_probability,
                                   double window_seconds,
                                   SimTime mean_inter_arrival = 1.0);

  /// Switches to the post-join common segment.
  QueryBuilder& Common();

  /// Sets the left stream's mean inter-arrival time τ (multi-stream
  /// statistics).
  QueryBuilder& LeftMeanInterArrival(SimTime tau);

  /// Sets the workload-class metadata used by per-class metrics.
  QueryBuilder& CostClass(int cost_class);
  QueryBuilder& ClassSelectivity(double selectivity);

  /// Finalizes the spec. Validates by compiling once under `mode`
  /// (programmer errors abort with a message). The builder can be reused
  /// afterwards; Build() does not mutate it.
  QuerySpec Build(
      SelectivityMode mode = SelectivityMode::kIndependent) const;

 private:
  enum class Segment { kLeft, kRight, kStage, kCommon };

  /// The operator vector new operators append to.
  std::vector<OperatorSpec>* CurrentSegment();

  QuerySpec spec_;
  Segment segment_ = Segment::kLeft;
};

}  // namespace aqsios::query

#endif  // AQSIOS_QUERY_BUILDER_H_
