// Experiment sweep harness: run (policy × utilization) grids and render the
// series the paper's figures report.

#ifndef AQSIOS_CORE_EXPERIMENT_H_
#define AQSIOS_CORE_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/dsms.h"
#include "core/sharded_dsms.h"
#include "query/workload.h"

namespace aqsios::core {

/// The QoS metric a figure plots.
enum class Metric {
  kAvgSlowdown,
  kAvgResponseMs,
  kMaxSlowdown,
  kL2Slowdown,
  kRmsSlowdown,
  /// Jain fairness over per-query mean slowdowns (needs
  /// qos.track_per_query).
  kJainFairness,
  /// Run-time memory: peak / time-averaged queued tuples.
  kPeakQueuedTuples,
  kAvgQueuedTuples,
};

const char* MetricName(Metric metric);
double GetMetric(const RunResult& result, Metric metric);

/// Process-wide peak resident set size in KiB (0 where unsupported).
int64_t CurrentPeakRssKb();

struct SweepConfig {
  /// Base workload; `utilization` is overridden per sweep point. The same
  /// seed is reused at every point so all policies and loads see identical
  /// query populations and arrival patterns.
  query::WorkloadConfig workload;
  std::vector<double> utilizations;
  std::vector<sched::PolicyConfig> policies;
  /// Per-cell simulation knobs, applied uniformly to every cell. This is
  /// also where tuple-train batching rides into a sweep
  /// (SimulationOptions::batch_size / batch_quantum): a batched sweep runs
  /// the same grid with every engine draining up to batch_size tuples per
  /// scheduling decision.
  SimulationOptions options;
  /// Worker threads for the sweep: each (utilization, policy) cell is an
  /// independent single-threaded simulation, so cells run concurrently.
  /// 1 = serial; 0 = one per hardware thread. Results are bit-for-bit
  /// identical for any thread count (only wall_ms / max_rss_kb vary).
  int threads = 0;
};

struct SweepCell {
  double utilization = 0.0;
  std::string policy;
  RunResult result;
  /// Wall-clock spent simulating this cell, in (real) milliseconds.
  double wall_ms = 0.0;
  /// Process-wide peak RSS (KiB) observed when this cell finished. Monotone
  /// over a run; the grid maximum is the sweep's memory high-water mark.
  int64_t max_rss_kb = 0;
  /// Sharded cells only (options.shards > 1; empty otherwise — the report
  /// writer then omits the shard block so unsharded sweep JSON is
  /// unchanged): per-shard accounting and the max/mean busy-time ratio.
  std::vector<ShardRunStats> shard_stats;
  double load_imbalance = 0.0;
};

/// Runs every (utilization, policy) combination, dispatching cells across
/// `config.threads` workers. Workload generation is shared across policies
/// of the same utilization, and cells are returned in grid order
/// (utilizations outer, policies inner) regardless of thread count.
std::vector<SweepCell> RunSweep(const SweepConfig& config);

/// Renders one metric as a table: one row per utilization, one column per
/// policy (figure-series layout).
Table SweepTable(const std::vector<SweepCell>& cells, Metric metric,
                 int precision = 4);

}  // namespace aqsios::core

#endif  // AQSIOS_CORE_EXPERIMENT_H_
