// Experiment sweep harness: run (policy × utilization) grids and render the
// series the paper's figures report.

#ifndef AQSIOS_CORE_EXPERIMENT_H_
#define AQSIOS_CORE_EXPERIMENT_H_

#include <string>
#include <vector>

#include "common/table.h"
#include "core/dsms.h"
#include "query/workload.h"

namespace aqsios::core {

/// The QoS metric a figure plots.
enum class Metric {
  kAvgSlowdown,
  kAvgResponseMs,
  kMaxSlowdown,
  kL2Slowdown,
  kRmsSlowdown,
  /// Jain fairness over per-query mean slowdowns (needs
  /// qos.track_per_query).
  kJainFairness,
  /// Run-time memory: peak / time-averaged queued tuples.
  kPeakQueuedTuples,
  kAvgQueuedTuples,
};

const char* MetricName(Metric metric);
double GetMetric(const RunResult& result, Metric metric);

struct SweepConfig {
  /// Base workload; `utilization` is overridden per sweep point. The same
  /// seed is reused at every point so all policies and loads see identical
  /// query populations and arrival patterns.
  query::WorkloadConfig workload;
  std::vector<double> utilizations;
  std::vector<sched::PolicyConfig> policies;
  SimulationOptions options;
};

struct SweepCell {
  double utilization = 0.0;
  std::string policy;
  RunResult result;
};

/// Runs every (utilization, policy) combination. Workload generation is
/// shared across policies of the same utilization.
std::vector<SweepCell> RunSweep(const SweepConfig& config);

/// Renders one metric as a table: one row per utilization, one column per
/// policy (figure-series layout).
Table SweepTable(const std::vector<SweepCell>& cells, Metric metric,
                 int precision = 4);

}  // namespace aqsios::core

#endif  // AQSIOS_CORE_EXPERIMENT_H_
