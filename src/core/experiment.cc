#include "core/experiment.h"

#include <algorithm>

#include "common/check.h"

namespace aqsios::core {

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kAvgSlowdown:
      return "avg_slowdown";
    case Metric::kAvgResponseMs:
      return "avg_response_ms";
    case Metric::kMaxSlowdown:
      return "max_slowdown";
    case Metric::kL2Slowdown:
      return "l2_slowdown";
    case Metric::kRmsSlowdown:
      return "rms_slowdown";
    case Metric::kJainFairness:
      return "jain_fairness";
    case Metric::kPeakQueuedTuples:
      return "peak_queued_tuples";
    case Metric::kAvgQueuedTuples:
      return "avg_queued_tuples";
  }
  return "unknown";
}

double GetMetric(const RunResult& result, Metric metric) {
  switch (metric) {
    case Metric::kAvgSlowdown:
      return result.qos.avg_slowdown;
    case Metric::kAvgResponseMs:
      return SimTimeToMillis(result.qos.avg_response);
    case Metric::kMaxSlowdown:
      return result.qos.max_slowdown;
    case Metric::kL2Slowdown:
      return result.qos.l2_slowdown;
    case Metric::kRmsSlowdown:
      return result.qos.rms_slowdown;
    case Metric::kJainFairness:
      return result.qos.JainFairnessIndex();
    case Metric::kPeakQueuedTuples:
      return static_cast<double>(result.counters.peak_queued_tuples);
    case Metric::kAvgQueuedTuples:
      return result.counters.avg_queued_tuples;
  }
  AQSIOS_CHECK(false) << "unknown metric";
  return 0.0;
}

std::vector<SweepCell> RunSweep(const SweepConfig& config) {
  AQSIOS_CHECK(!config.utilizations.empty());
  AQSIOS_CHECK(!config.policies.empty());
  std::vector<SweepCell> cells;
  cells.reserve(config.utilizations.size() * config.policies.size());
  for (double utilization : config.utilizations) {
    query::WorkloadConfig workload_config = config.workload;
    workload_config.utilization = utilization;
    const query::Workload workload = query::GenerateWorkload(workload_config);
    for (const sched::PolicyConfig& policy : config.policies) {
      SweepCell cell;
      cell.utilization = utilization;
      cell.result = Simulate(workload, policy, config.options);
      cell.policy = cell.result.policy_name;
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

Table SweepTable(const std::vector<SweepCell>& cells, Metric metric,
                 int precision) {
  // Preserve first-seen order of policies and utilizations.
  std::vector<std::string> policies;
  std::vector<double> utilizations;
  for (const SweepCell& cell : cells) {
    if (std::find(policies.begin(), policies.end(), cell.policy) ==
        policies.end()) {
      policies.push_back(cell.policy);
    }
    if (std::find(utilizations.begin(), utilizations.end(),
                  cell.utilization) == utilizations.end()) {
      utilizations.push_back(cell.utilization);
    }
  }

  std::vector<std::string> header = {std::string("util\\") +
                                     MetricName(metric)};
  header.insert(header.end(), policies.begin(), policies.end());
  Table table(header);

  for (double utilization : utilizations) {
    std::vector<double> row_values;
    for (const std::string& policy : policies) {
      for (const SweepCell& cell : cells) {
        if (cell.utilization == utilization && cell.policy == policy) {
          row_values.push_back(GetMetric(cell.result, metric));
          break;
        }
      }
    }
    table.AddRow(FormatDouble(utilization, 3), row_values, precision);
  }
  return table;
}

}  // namespace aqsios::core
