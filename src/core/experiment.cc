#include "core/experiment.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/check.h"
#include "common/thread_pool.h"

namespace aqsios::core {

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kAvgSlowdown:
      return "avg_slowdown";
    case Metric::kAvgResponseMs:
      return "avg_response_ms";
    case Metric::kMaxSlowdown:
      return "max_slowdown";
    case Metric::kL2Slowdown:
      return "l2_slowdown";
    case Metric::kRmsSlowdown:
      return "rms_slowdown";
    case Metric::kJainFairness:
      return "jain_fairness";
    case Metric::kPeakQueuedTuples:
      return "peak_queued_tuples";
    case Metric::kAvgQueuedTuples:
      return "avg_queued_tuples";
  }
  return "unknown";
}

double GetMetric(const RunResult& result, Metric metric) {
  switch (metric) {
    case Metric::kAvgSlowdown:
      return result.qos.avg_slowdown;
    case Metric::kAvgResponseMs:
      return SimTimeToMillis(result.qos.avg_response);
    case Metric::kMaxSlowdown:
      return result.qos.max_slowdown;
    case Metric::kL2Slowdown:
      return result.qos.l2_slowdown;
    case Metric::kRmsSlowdown:
      return result.qos.rms_slowdown;
    case Metric::kJainFairness:
      return result.qos.JainFairnessIndex();
    case Metric::kPeakQueuedTuples:
      return static_cast<double>(result.counters.peak_queued_tuples);
    case Metric::kAvgQueuedTuples:
      return result.counters.avg_queued_tuples;
  }
  AQSIOS_CHECK(false) << "unknown metric";
  return 0.0;
}

int64_t CurrentPeakRssKb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return usage.ru_maxrss / 1024;  // ru_maxrss is bytes on macOS
#else
  return usage.ru_maxrss;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

std::vector<SweepCell> RunSweep(const SweepConfig& config) {
  AQSIOS_CHECK(!config.utilizations.empty());
  AQSIOS_CHECK(!config.policies.empty());
  const size_t num_utils = config.utilizations.size();
  const size_t num_policies = config.policies.size();
  std::vector<SweepCell> cells(num_utils * num_policies);

  // Each cell is an independent deterministic simulation writing only to its
  // own grid slot, so any dispatch order yields bit-identical RunResults;
  // the serial path below and the pool differ only in wall-clock.
  //
  // A single ring-buffer tracer cannot be shared by concurrent cells (and an
  // interleaved sweep trace would be meaningless anyway), so sweeps always
  // run untraced; callers wanting a trace run one extra simulation with a
  // tracer attached (see bench/bench_util.h MaybeWriteTrace).
  SimulationOptions cell_options = config.options;
  cell_options.tracer = nullptr;
  std::vector<query::Workload> workloads(num_utils);
  const auto generate_workload = [&](size_t u) {
    query::WorkloadConfig workload_config = config.workload;
    workload_config.utilization = config.utilizations[u];
    workloads[u] = query::GenerateWorkload(workload_config);
  };
  const auto run_cell = [&](size_t u, size_t p) {
    SweepCell& cell = cells[u * num_policies + p];
    cell.utilization = config.utilizations[u];
    const auto start = std::chrono::steady_clock::now();
    if (cell_options.shards > 1 || cell_options.rebalance.enabled) {
      ShardedRunResult sharded =
          SimulateSharded(workloads[u], config.policies[p], cell_options);
      cell.result = std::move(sharded.result);
      cell.shard_stats = std::move(sharded.shard_stats);
      cell.load_imbalance = sharded.LoadImbalance();
    } else {
      cell.result = Simulate(workloads[u], config.policies[p], cell_options);
    }
    cell.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    cell.policy = cell.result.policy_name;
    cell.max_rss_kb = CurrentPeakRssKb();
  };

  int threads =
      config.threads > 0 ? config.threads : ThreadPool::DefaultThreads();
  threads = std::min(threads, static_cast<int>(cells.size()));

  if (threads <= 1) {
    for (size_t u = 0; u < num_utils; ++u) {
      generate_workload(u);
      for (size_t p = 0; p < num_policies; ++p) run_cell(u, p);
    }
    return cells;
  }

  ThreadPool pool(threads);
  std::vector<std::future<void>> pending;
  // Phase 1: per-utilization workloads, shared by that row's policy runs.
  pending.reserve(num_utils);
  for (size_t u = 0; u < num_utils; ++u) {
    pending.push_back(pool.Submit([&generate_workload, u] {
      generate_workload(u);
    }));
  }
  for (std::future<void>& f : pending) f.get();
  // Phase 2: one task per grid cell.
  pending.clear();
  pending.reserve(cells.size());
  for (size_t u = 0; u < num_utils; ++u) {
    for (size_t p = 0; p < num_policies; ++p) {
      pending.push_back(pool.Submit([&run_cell, u, p] { run_cell(u, p); }));
    }
  }
  for (std::future<void>& f : pending) f.get();
  return cells;
}

Table SweepTable(const std::vector<SweepCell>& cells, Metric metric,
                 int precision) {
  // Preserve first-seen order of policies and utilizations.
  std::vector<std::string> policies;
  std::vector<double> utilizations;
  for (const SweepCell& cell : cells) {
    if (std::find(policies.begin(), policies.end(), cell.policy) ==
        policies.end()) {
      policies.push_back(cell.policy);
    }
    if (std::find(utilizations.begin(), utilizations.end(),
                  cell.utilization) == utilizations.end()) {
      utilizations.push_back(cell.utilization);
    }
  }

  std::vector<std::string> header = {std::string("util\\") +
                                     MetricName(metric)};
  header.insert(header.end(), policies.begin(), policies.end());
  Table table(header);

  for (double utilization : utilizations) {
    std::vector<double> row_values;
    for (const std::string& policy : policies) {
      for (const SweepCell& cell : cells) {
        if (cell.utilization == utilization && cell.policy == policy) {
          row_values.push_back(GetMetric(cell.result, metric));
          break;
        }
      }
    }
    table.AddRow(FormatDouble(utilization, 3), row_values, precision);
  }
  return table;
}

}  // namespace aqsios::core
