#include "core/rebalance.h"

#include <algorithm>

#include "common/check.h"

namespace aqsios::core {

RebalanceController::RebalanceController(const RebalanceConfig& config,
                                         int num_shards, int num_groups)
    : config_(config),
      shard_ewma_(static_cast<size_t>(num_shards), 0.0),
      group_ewma_(static_cast<size_t>(num_groups), 0.0) {
  AQSIOS_CHECK_GE(num_shards, 1);
  AQSIOS_CHECK_GT(config.ewma_alpha, 0.0);
  AQSIOS_CHECK_LE(config.ewma_alpha, 1.0);
  AQSIOS_CHECK_GE(config.imbalance_high, config.imbalance_low);
  AQSIOS_CHECK_GE(config.imbalance_low, 1.0);
}

double RebalanceController::Imbalance() const {
  double total = 0.0;
  double max_load = 0.0;
  for (double load : shard_ewma_) {
    total += load;
    max_load = std::max(max_load, load);
  }
  if (total <= 0.0) return 1.0;
  return max_load / (total / static_cast<double>(shard_ewma_.size()));
}

std::vector<RebalanceController::Migration> RebalanceController::OnEpoch(
    const std::vector<double>& shard_busy_delta,
    const std::vector<double>& group_busy_delta,
    const std::vector<int>& owner_of_group) {
  AQSIOS_CHECK_EQ(shard_busy_delta.size(), shard_ewma_.size());
  AQSIOS_CHECK_EQ(group_busy_delta.size(), group_ewma_.size());
  AQSIOS_CHECK_EQ(owner_of_group.size(), group_ewma_.size());
  const double alpha = config_.ewma_alpha;
  for (size_t s = 0; s < shard_ewma_.size(); ++s) {
    shard_ewma_[s] = alpha * shard_busy_delta[s] + (1.0 - alpha) * shard_ewma_[s];
  }
  for (size_t g = 0; g < group_ewma_.size(); ++g) {
    group_ewma_[g] = alpha * group_busy_delta[g] + (1.0 - alpha) * group_ewma_[g];
  }

  const double imbalance = Imbalance();
  if (!active_ && imbalance > config_.imbalance_high) active_ = true;
  if (active_ && imbalance < config_.imbalance_low) active_ = false;

  std::vector<Migration> migrations;
  const int num_shards = static_cast<int>(shard_ewma_.size());
  if (!active_ || num_shards < 2) return migrations;

  // Projected loads: shard EWMAs adjusted by the group EWMAs of the moves
  // chosen this epoch, so back-to-back picks don't overload the target.
  std::vector<double> load = shard_ewma_;
  std::vector<int> owner = owner_of_group;
  for (int round = 0; round < config_.max_migrations_per_epoch; ++round) {
    int hottest = 0;
    int coolest = 0;
    for (int s = 1; s < num_shards; ++s) {
      if (load[static_cast<size_t>(s)] > load[static_cast<size_t>(hottest)]) {
        hottest = s;
      }
      if (load[static_cast<size_t>(s)] < load[static_cast<size_t>(coolest)]) {
        coolest = s;
      }
    }
    if (hottest == coolest) break;
    // Largest-EWMA group on the hottest shard whose move strictly lowers the
    // projected hottest load: cool + g < hot (the anti-ping-pong guard —
    // a group bigger than the gap would just swap the roles). Ties go to
    // the lowest group id.
    int best_group = -1;
    double best_ewma = 0.0;
    const double hot = load[static_cast<size_t>(hottest)];
    const double cool = load[static_cast<size_t>(coolest)];
    for (size_t g = 0; g < group_ewma_.size(); ++g) {
      if (owner[g] != hottest) continue;
      const double ewma = group_ewma_[g];
      if (ewma <= 0.0) continue;
      if (cool + ewma >= hot) continue;
      if (ewma > best_ewma) {
        best_ewma = ewma;
        best_group = static_cast<int>(g);
      }
    }
    if (best_group < 0) break;
    migrations.push_back(Migration{best_group, hottest, coolest});
    load[static_cast<size_t>(hottest)] -= best_ewma;
    load[static_cast<size_t>(coolest)] += best_ewma;
    owner[static_cast<size_t>(best_group)] = coolest;
  }
  return migrations;
}

}  // namespace aqsios::core
