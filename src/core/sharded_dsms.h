// Shard-parallel DSMS runtime.
//
// Execution model: the query population is partitioned into K disjoint
// shards by the seeded hash of sched/shard_router.h (whole sharing groups
// co-locate). Every shard owns a complete private runtime — scheduler,
// engine, arena-backed unit table, QoS collector, optional tracer — and
// simulates its sub-plan on its own virtual clock, exactly as a
// single-engine run over that query subset would. Arrivals are fanned out
// from the global time-ordered table through lock-free SPSC rings (one
// producer walks the table once; one consumer per shard builds the
// shard-local sub-table), and shards execute concurrently on a thread pool.
//
// Determinism contract (docs/scaling.md):
//  * Results are a pure function of (plan, arrivals, policy, K, shard_seed).
//    Thread count, pool scheduling, and ring timing affect only wall-clock.
//  * Emissions and filter drops are schedule-invariant: frozen draws key on
//    global Arrival::id / group id / composite identity, which shard
//    sub-tables and sub-plans preserve. Single-stream workloads therefore
//    emit identical tuples at any K. Windowed joins evict state relative to
//    the probing tuple's timestamp, so — as with any schedule change
//    (policy, batching, sharding) — match counts can shift marginally when
//    cross-stream processing order changes; the deltas stay within a
//    fraction of a percent (pinned by tests/core_sharded_dsms_test.cc).
//  * K > 1 is a *scheduling variant*, not a bit-identical reproduction of
//    K = 1: each shard's scheduler ranks only its own units, so per-tuple
//    response times differ from the global schedule (the same way HNR
//    differs from RR). K = 1 — routed through the classic path by
//    SimulatePlan — is byte-identical to the unsharded runtime.
//  * Merged metrics are exact merges (histogram buckets add, RunningStats
//    sums add, timeline buckets align by arrival time), never re-sampled
//    approximations.

#ifndef AQSIOS_CORE_SHARDED_DSMS_H_
#define AQSIOS_CORE_SHARDED_DSMS_H_

#include <cstdint>
#include <vector>

#include "core/dsms.h"
#include "obs/tracer.h"
#include "sched/shard_router.h"

namespace aqsios::core {

/// Per-shard execution accounting of one sharded run.
struct ShardRunStats {
  int shard = 0;
  /// Queries assigned to this shard (0 = the shard never simulated).
  int num_queries = 0;
  /// Arrivals routed to this shard's sub-table.
  int64_t arrivals = 0;
  /// Real time this shard's simulation task took (milliseconds).
  double wall_ms = 0.0;
  /// Process-wide peak RSS (KiB) when the shard's task finished.
  int64_t max_rss_kb = 0;
  /// The shard engine's virtual busy time — the load-balance quantity.
  double busy_seconds = 0.0;
  /// The shard's virtual clock when it drained.
  double end_seconds = 0.0;
  /// Arrivals the admission controller refused to route to this shard
  /// (0 unless SimulationOptions::admission is enabled).
  int64_t admission_dropped = 0;
  /// Placement groups migrated *out of* this shard by the elastic rebalance
  /// controller (0 unless SimulationOptions::rebalance is enabled).
  int64_t migrations = 0;
  /// Trains this shard stole as an idle thief (0 unless rebalance.steal).
  int64_t steals = 0;
};

/// A sharded run: the merged RunResult plus the sharding it came from.
struct ShardedRunResult {
  RunResult result;
  sched::ShardAssignment assignment;
  /// One entry per shard, indexed by shard.
  std::vector<ShardRunStats> shard_stats;
  /// Per shard: shard-local query id -> global query id (sub-plan order).
  /// Feed these to obs::MergeShardTraces when per-shard tracers were used.
  std::vector<std::vector<int32_t>> query_id_maps;

  /// max / mean of per-shard busy_seconds over all shards (empty shards
  /// count as zero busy). 1.0 = perfectly balanced; K = one shard holds all
  /// the work. 1.0 when there is no work at all.
  double LoadImbalance() const;
};

/// Runs `plan` under `policy` partitioned into options.shards shards.
/// `shard_tracers`, when non-null, must hold one (possibly null) tracer per
/// shard; each is attached to that shard's engine as its private
/// single-producer sink (options.tracer is ignored on this path).
ShardedRunResult SimulateShardedPlan(
    const query::GlobalPlan& plan, const stream::ArrivalTable& arrivals,
    const sched::PolicyConfig& policy, const SimulationOptions& options = {},
    const std::vector<obs::EventTracer*>* shard_tracers = nullptr);

/// Workload-level convenience wrapper.
ShardedRunResult SimulateSharded(
    const query::Workload& workload, const sched::PolicyConfig& policy,
    const SimulationOptions& options = {},
    const std::vector<obs::EventTracer*>* shard_tracers = nullptr);

}  // namespace aqsios::core

#endif  // AQSIOS_CORE_SHARDED_DSMS_H_
