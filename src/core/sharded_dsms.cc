#include "core/sharded_dsms.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "core/experiment.h"
#include "core/rebalance.h"
#include "exec/engine.h"
#include "obs/telemetry.h"

namespace aqsios::core {

double ShardedRunResult::LoadImbalance() const {
  if (shard_stats.empty()) return 1.0;
  double max_busy = 0.0;
  double total_busy = 0.0;
  int populated = 0;
  for (const ShardRunStats& stats : shard_stats) {
    // Shards the hash left without queries never simulate; counting them in
    // the mean would understate it and inflate the ratio (a 4-shard run with
    // one empty shard and three equal ones is balanced, not 4/3-imbalanced).
    if (stats.num_queries == 0) continue;
    ++populated;
    max_busy = std::max(max_busy, stats.busy_seconds);
    total_busy += stats.busy_seconds;
  }
  if (populated == 0 || total_busy <= 0.0) return 1.0;
  return max_busy / (total_busy / static_cast<double>(populated));
}

namespace {

// Placement groups of the elastic runner: whole sharing groups move as one
// (their shared leaf and frozen draws key on the global group id) and every
// unshared query is its own singleton group. The anchor rule matches
// sched::AssignShards, so a group's initial owner is exactly the static hash
// shard of its anchor — rebalance-off placement is the epoch-0 placement.
struct PlacementGroups {
  std::vector<int> group_of_query;
  std::vector<query::QueryId> anchor_of_group;
  int num_groups = 0;
};

PlacementGroups BuildPlacementGroups(const query::GlobalPlan& plan) {
  const int n = plan.num_queries();
  std::vector<query::QueryId> anchor_of_query(static_cast<size_t>(n));
  for (int q = 0; q < n; ++q) {
    anchor_of_query[static_cast<size_t>(q)] = static_cast<query::QueryId>(q);
  }
  for (const query::SharingGroup& group : plan.sharing_groups()) {
    query::QueryId anchor = group.members.front();
    for (query::QueryId member : group.members) {
      anchor = std::min(anchor, member);
    }
    for (query::QueryId member : group.members) {
      anchor_of_query[static_cast<size_t>(member)] = anchor;
    }
  }
  PlacementGroups pg;
  pg.anchor_of_group = anchor_of_query;
  std::sort(pg.anchor_of_group.begin(), pg.anchor_of_group.end());
  pg.anchor_of_group.erase(
      std::unique(pg.anchor_of_group.begin(), pg.anchor_of_group.end()),
      pg.anchor_of_group.end());
  pg.num_groups = static_cast<int>(pg.anchor_of_group.size());
  pg.group_of_query.resize(static_cast<size_t>(n));
  for (int q = 0; q < n; ++q) {
    const auto it = std::lower_bound(pg.anchor_of_group.begin(),
                                     pg.anchor_of_group.end(),
                                     anchor_of_query[static_cast<size_t>(q)]);
    pg.group_of_query[static_cast<size_t>(q)] =
        static_cast<int>(it - pg.anchor_of_group.begin());
  }
  return pg;
}

// The elastic runner (SimulationOptions::rebalance): K engines each hold the
// *full* plan and the global arrival table but deliver only to the placement
// groups they own, and all advance through shared virtual-time epochs. At
// every epoch barrier the RebalanceController folds the per-shard /
// per-group busy deltas into EWMAs and may migrate whole groups hottest ->
// coolest (quiesced handoff of queues + window-join state), and idle shards
// may steal a bounded train of queued stateless work. Everything the
// controller sees — busy seconds on engine virtual clocks, queue depths at
// barriers — is a pure function of (plan, arrivals, policy, K, shard_seed),
// so elastic runs are deterministic and thread-count-invariant, and at K = 1
// the single engine replays the classic run byte for byte.
ShardedRunResult SimulateElasticPlan(
    const query::GlobalPlan& plan, const stream::ArrivalTable& arrivals,
    const sched::PolicyConfig& policy, const SimulationOptions& options,
    const std::vector<obs::EventTracer*>* shard_tracers) {
  const int num_shards = options.shards;
  AQSIOS_CHECK_GE(num_shards, 1);
  AQSIOS_CHECK(options.tracer == nullptr && shard_tracers == nullptr)
      << "elastic rebalancing does not support tracing (a migrated group's "
         "events would interleave across shard trace files)";
  AQSIOS_CHECK(!options.adaptation.enabled)
      << "elastic rebalancing is incompatible with priority adaptation";
  AQSIOS_CHECK(!options.calibration.enabled)
      << "elastic rebalancing is incompatible with calibration (estimator "
         "state cannot migrate with a group)";
  AQSIOS_CHECK(!options.admission.enabled)
      << "elastic rebalancing bypasses the shard router; admission control "
         "is unavailable on this path";
  AQSIOS_CHECK(!options.shed.enabled)
      << "elastic rebalancing is incompatible with load shedding";

  ShardedRunResult sharded;
  sharded.assignment =
      sched::AssignShards(plan, num_shards, options.shard_seed);
  sharded.shard_stats.resize(static_cast<size_t>(num_shards));
  sharded.query_id_maps.resize(static_cast<size_t>(num_shards));

  const PlacementGroups pg = BuildPlacementGroups(plan);
  std::vector<int> owner_of_group(static_cast<size_t>(pg.num_groups));
  for (int g = 0; g < pg.num_groups; ++g) {
    owner_of_group[static_cast<size_t>(g)] =
        sharded.assignment.shard_of_query[static_cast<size_t>(
            pg.anchor_of_group[static_cast<size_t>(g)])];
  }

  obs::TelemetryHub* hub = options.telemetry;
  if (hub != nullptr) {
    AQSIOS_CHECK_GE(hub->num_shards(), num_shards)
        << "telemetry hub has fewer cells than shards";
  }
  for (int s = 0; s < num_shards; ++s) {
    ShardRunStats& stats = sharded.shard_stats[static_cast<size_t>(s)];
    stats.shard = s;
    stats.num_queries = static_cast<int>(
        sharded.assignment.queries_of_shard[static_cast<size_t>(s)].size());
    if (hub != nullptr) hub->SetShardQueries(s, stats.num_queries);
    // Every elastic engine sees the full plan, so its query ids *are* the
    // global ids.
    std::vector<int32_t>& to_global =
        sharded.query_id_maps[static_cast<size_t>(s)];
    to_global.resize(static_cast<size_t>(plan.num_queries()));
    for (int q = 0; q < plan.num_queries(); ++q) {
      to_global[static_cast<size_t>(q)] = q;
    }
  }

  const SimTime min_op_cost = plan.MinOperatorCost();
  std::vector<metrics::QosCollector> collectors;
  collectors.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) collectors.emplace_back(options.qos);
  std::vector<std::unique_ptr<sched::Scheduler>> schedulers;
  std::vector<std::unique_ptr<exec::Engine>> engines;
  schedulers.reserve(static_cast<size_t>(num_shards));
  engines.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    exec::EngineConfig config = MakeEngineConfig(options, policy, min_op_cost);
    config.telemetry = hub != nullptr ? hub->cell(s) : nullptr;
    schedulers.push_back(sched::CreateScheduler(policy));
    engines.push_back(std::make_unique<exec::Engine>(
        &plan, &arrivals, config, schedulers.back().get(),
        &collectors[static_cast<size_t>(s)]));
    std::vector<uint8_t> owned(static_cast<size_t>(pg.num_groups), 0);
    for (int g = 0; g < pg.num_groups; ++g) {
      if (owner_of_group[static_cast<size_t>(g)] == s) {
        owned[static_cast<size_t>(g)] = 1;
      }
    }
    engines.back()->ConfigureElastic(pg.group_of_query, pg.num_groups,
                                     std::move(owned));
    engines.back()->Begin();
  }

  const SimTime span =
      arrivals.arrivals.empty() ? 0.0 : arrivals.arrivals.back().time;
  const SimTime epoch = options.rebalance.epoch_seconds > 0.0
                            ? options.rebalance.epoch_seconds
                            : (span > 0.0 ? span / 32.0 : 1.0);
  RebalanceController controller(options.rebalance, num_shards,
                                 pg.num_groups);
  std::vector<double> prev_shard_busy(static_cast<size_t>(num_shards), 0.0);
  std::vector<double> prev_group_busy(static_cast<size_t>(pg.num_groups),
                                      0.0);
  std::vector<double> shard_busy_delta(static_cast<size_t>(num_shards), 0.0);
  std::vector<double> group_busy_delta(static_cast<size_t>(pg.num_groups),
                                       0.0);
  std::vector<uint8_t> drained(static_cast<size_t>(num_shards), 0);
  std::vector<double> wall_ms(static_cast<size_t>(num_shards), 0.0);

  int exec_threads = options.shard_threads > 0 ? options.shard_threads
                                               : ThreadPool::DefaultThreads();
  exec_threads = std::max(1, std::min(exec_threads, num_shards));
  std::unique_ptr<ThreadPool> exec_pool;
  if (exec_threads > 1) exec_pool = std::make_unique<ThreadPool>(exec_threads);

  // Each shard runs independently between barriers (private scheduler,
  // collector, telemetry cell; shared state is const), so epochs may execute
  // on the pool; every migration/steal decision happens on this thread after
  // the barrier joins, from deterministic virtual-time quantities.
  const auto run_epoch = [&](int s, SimTime barrier) {
    const size_t i = static_cast<size_t>(s);
    const auto start = std::chrono::steady_clock::now();
    drained[i] = engines[i]->RunUntil(barrier) ? 1 : 0;
    wall_ms[i] += std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  };

  SimTime barrier = 0.0;
  while (true) {
    barrier += epoch;
    if (exec_pool != nullptr) {
      std::vector<std::future<void>> running;
      running.reserve(static_cast<size_t>(num_shards));
      for (int s = 0; s < num_shards; ++s) {
        running.push_back(
            exec_pool->Submit([&run_epoch, s, barrier] { run_epoch(s, barrier); }));
      }
      for (std::future<void>& f : running) f.get();
    } else {
      for (int s = 0; s < num_shards; ++s) run_epoch(s, barrier);
    }
    bool all_drained = true;
    for (int s = 0; s < num_shards; ++s) {
      if (!drained[static_cast<size_t>(s)]) all_drained = false;
    }
    if (all_drained) break;

    for (int s = 0; s < num_shards; ++s) {
      const size_t i = static_cast<size_t>(s);
      const double busy = engines[i]->busy_time();
      shard_busy_delta[i] = busy - prev_shard_busy[i];
      prev_shard_busy[i] = busy;
    }
    for (int g = 0; g < pg.num_groups; ++g) {
      const size_t i = static_cast<size_t>(g);
      double busy = 0.0;
      for (int s = 0; s < num_shards; ++s) {
        busy += engines[static_cast<size_t>(s)]->group_busy()[i];
      }
      group_busy_delta[i] = busy - prev_group_busy[i];
      prev_group_busy[i] = busy;
    }
    const std::vector<RebalanceController::Migration> moves =
        controller.OnEpoch(shard_busy_delta, group_busy_delta,
                           owner_of_group);
    for (const RebalanceController::Migration& m : moves) {
      exec::Engine::GroupState state =
          engines[static_cast<size_t>(m.from)]->ExtractGroup(m.group);
      engines[static_cast<size_t>(m.to)]->InjectGroup(
          m.group, std::move(state), barrier);
      owner_of_group[static_cast<size_t>(m.group)] = m.to;
      ++sharded.shard_stats[static_cast<size_t>(m.from)].migrations;
    }

    if (options.rebalance.steal && num_shards > 1) {
      for (int thief = 0; thief < num_shards; ++thief) {
        if (engines[static_cast<size_t>(thief)]->queued_tuples() != 0) {
          continue;
        }
        int donor = -1;
        int64_t donor_backlog = 0;
        for (int s = 0; s < num_shards; ++s) {
          if (s == thief) continue;
          const int64_t backlog =
              engines[static_cast<size_t>(s)]->queued_tuples();
          if (backlog >= options.rebalance.steal_min_backlog &&
              backlog > donor_backlog) {
            donor = s;
            donor_backlog = backlog;
          }
        }
        if (donor < 0) continue;
        int unit = -1;
        std::vector<sched::QueueEntry> entries;
        if (engines[static_cast<size_t>(donor)]->ExtractStolenTrain(
                options.rebalance.steal_max_tuples, &unit, &entries)) {
          engines[static_cast<size_t>(thief)]->InjectStolenTrain(
              unit, entries, barrier);
          ++sharded.shard_stats[static_cast<size_t>(thief)].steals;
        }
      }
    }

    if (hub != nullptr) {
      std::vector<int> owned_queries(static_cast<size_t>(num_shards), 0);
      for (int q = 0; q < plan.num_queries(); ++q) {
        ++owned_queries[static_cast<size_t>(
            owner_of_group[static_cast<size_t>(
                pg.group_of_query[static_cast<size_t>(q)])])];
      }
      for (int s = 0; s < num_shards; ++s) {
        const size_t i = static_cast<size_t>(s);
        const ShardRunStats& stats = sharded.shard_stats[i];
        hub->SetShardQueries(s, owned_queries[i]);
        hub->SetRouted(s, engines[i]->elastic_arrivals_routed());
        hub->SetMigrations(s, stats.migrations);
        hub->SetSteals(s, stats.steals);
      }
    }
  }

  std::vector<exec::RunCounters> counters(static_cast<size_t>(num_shards));
  std::vector<int> owned_queries(static_cast<size_t>(num_shards), 0);
  for (int q = 0; q < plan.num_queries(); ++q) {
    ++owned_queries[static_cast<size_t>(owner_of_group[static_cast<size_t>(
        pg.group_of_query[static_cast<size_t>(q)])])];
  }
  for (int s = 0; s < num_shards; ++s) {
    const size_t i = static_cast<size_t>(s);
    counters[i] = engines[i]->Finish();
    ShardRunStats& stats = sharded.shard_stats[i];
    stats.num_queries = owned_queries[i];
    stats.arrivals = engines[i]->elastic_arrivals_routed();
    stats.wall_ms = wall_ms[i];
    stats.max_rss_kb = CurrentPeakRssKb();
    stats.busy_seconds = counters[i].busy_time;
    stats.end_seconds = counters[i].end_time;
    if (hub != nullptr) {
      hub->SetShardQueries(s, stats.num_queries);
      hub->SetRouted(s, stats.arrivals);
      hub->SetMigrations(s, stats.migrations);
      hub->SetSteals(s, stats.steals);
    }
  }

  sharded.result.policy_name = schedulers.front()->name();
  metrics::QosCollector merged(options.qos);
  bool first = true;
  for (int s = 0; s < num_shards; ++s) {
    const size_t i = static_cast<size_t>(s);
    merged.MergeFrom(collectors[i], sharded.query_id_maps[i]);
    if (first) {
      sharded.result.counters = counters[i];
      first = false;
    } else {
      sharded.result.counters.Merge(counters[i]);
    }
  }
  sharded.result.qos = merged.Snapshot();
  sharded.result.qos.shed_count = sharded.result.counters.tuples_shed;
  sharded.result.qos.shed_ratio = sharded.result.counters.ShedRatio();
  return sharded;
}

}  // namespace

ShardedRunResult SimulateShardedPlan(
    const query::GlobalPlan& plan, const stream::ArrivalTable& arrivals,
    const sched::PolicyConfig& policy, const SimulationOptions& options,
    const std::vector<obs::EventTracer*>* shard_tracers) {
  const int num_shards = options.shards;
  AQSIOS_CHECK_GE(num_shards, 1);
  if (options.rebalance.enabled) {
    return SimulateElasticPlan(plan, arrivals, policy, options,
                               shard_tracers);
  }
  if (shard_tracers != nullptr) {
    AQSIOS_CHECK_EQ(shard_tracers->size(), static_cast<size_t>(num_shards));
  }

  ShardedRunResult sharded;
  sharded.assignment =
      sched::AssignShards(plan, num_shards, options.shard_seed);
  sharded.query_id_maps.resize(static_cast<size_t>(num_shards));
  sharded.shard_stats.resize(static_cast<size_t>(num_shards));
  obs::TelemetryHub* hub = options.telemetry;
  if (hub != nullptr) {
    AQSIOS_CHECK_GE(hub->num_shards(), num_shards)
        << "telemetry hub has fewer cells than shards";
  }
  for (int s = 0; s < num_shards; ++s) {
    ShardRunStats& stats = sharded.shard_stats[static_cast<size_t>(s)];
    stats.shard = s;
    stats.num_queries = static_cast<int>(
        sharded.assignment.queries_of_shard[static_cast<size_t>(s)].size());
    if (hub != nullptr) hub->SetShardQueries(s, stats.num_queries);
  }

  // The §9.2 overhead unit is system-wide: every shard charges the *full*
  // plan's cheapest operator cost, not its sub-plan's.
  const SimTime min_op_cost = plan.MinOperatorCost();

  // Sub-plans: local dense query ids for the engine's tables; global
  // SharingGroup::id preserved so shared-leaf frozen draws are
  // shard-invariant. A group's members all share the group anchor, so the
  // whole group lands on one shard by construction.
  std::vector<query::GlobalPlan> sub_plans(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    const std::vector<query::QueryId>& members =
        sharded.assignment.queries_of_shard[static_cast<size_t>(s)];
    if (members.empty()) continue;
    std::vector<int> local_of_global(
        static_cast<size_t>(plan.num_queries()), -1);
    std::vector<query::CompiledQuery> compiled;
    compiled.reserve(members.size());
    std::vector<int32_t>& to_global =
        sharded.query_id_maps[static_cast<size_t>(s)];
    to_global.reserve(members.size());
    for (query::QueryId global : members) {
      const query::CompiledQuery& q = plan.query(global);
      query::QuerySpec spec = q.spec();
      local_of_global[static_cast<size_t>(global)] =
          static_cast<int>(compiled.size());
      spec.id = static_cast<query::QueryId>(compiled.size());
      to_global.push_back(global);
      compiled.emplace_back(std::move(spec), q.selectivity_mode());
    }
    std::vector<query::SharingGroup> groups;
    for (const query::SharingGroup& group : plan.sharing_groups()) {
      if (sharded.assignment.shard_of_query[static_cast<size_t>(
              group.members.front())] != s) {
        continue;
      }
      query::SharingGroup local = group;  // keeps the global group id
      for (query::QueryId& member : local.members) {
        member = local_of_global[static_cast<size_t>(member)];
        AQSIOS_CHECK_GE(member, 0) << "sharing group split across shards";
      }
      groups.push_back(std::move(local));
    }
    sub_plans[static_cast<size_t>(s)] = query::GlobalPlan(
        std::move(compiled), std::move(groups), plan.num_streams());
  }

  // Arrival routing. All K consumers must drain concurrently while the
  // producer pushes (a full ring blocks the producer), so the collect pool
  // has exactly K workers and the caller thread produces.
  std::vector<stream::ArrivalTable> sub_arrivals(
      static_cast<size_t>(num_shards));
  {
    sched::ShardRouter router(plan, sharded.assignment,
                              sched::ShardRouter::kDefaultRingCapacity,
                              options.stall);
    // Admission control sits on the producer side of the rings: rejected
    // arrivals are decided purely by the time-ordered table walk, so the
    // admitted sub-tables — and therefore all downstream results — stay
    // deterministic regardless of ring/thread timing.
    std::unique_ptr<sched::AdmissionController> admission;
    if (options.admission.enabled) {
      admission = std::make_unique<sched::AdmissionController>(
          plan, sharded.assignment, options.admission);
      router.AttachAdmission(admission.get());
    }
    ThreadPool collect_pool(num_shards);
    std::vector<std::future<void>> draining;
    draining.reserve(static_cast<size_t>(num_shards));
    for (int s = 0; s < num_shards; ++s) {
      draining.push_back(collect_pool.Submit([&router, &sub_arrivals, s] {
        router.Collect(s, &sub_arrivals[static_cast<size_t>(s)]);
      }));
    }
    router.Route(arrivals);
    for (std::future<void>& f : draining) f.get();
    for (int s = 0; s < num_shards; ++s) {
      ShardRunStats& stats = sharded.shard_stats[static_cast<size_t>(s)];
      stats.arrivals = router.routed_counts()[static_cast<size_t>(s)];
      if (admission != nullptr) {
        stats.admission_dropped =
            admission->dropped_per_shard()[static_cast<size_t>(s)];
      }
      // The routing/admission pass runs before any shard engine; publish
      // its per-shard outcome into the hub so the sampler sees routed and
      // rejected counts for the whole execution phase.
      if (hub != nullptr) {
        hub->SetRouted(s, stats.arrivals);
        hub->SetAdmissionRejected(s, stats.admission_dropped);
      }
    }
  }

  // Execute the shards. Each run is single-threaded and deterministic over
  // its sub-plan + sub-table, so dispatch order and thread count change
  // only wall_ms / max_rss_kb.
  std::vector<metrics::QosCollector> collectors;
  collectors.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) collectors.emplace_back(options.qos);
  std::vector<exec::RunCounters> counters(static_cast<size_t>(num_shards));

  const auto run_shard = [&](int s) {
    const size_t i = static_cast<size_t>(s);
    const auto start = std::chrono::steady_clock::now();
    exec::EngineConfig config = MakeEngineConfig(options, policy, min_op_cost);
    config.tracer =
        shard_tracers != nullptr ? (*shard_tracers)[i] : nullptr;
    config.telemetry = hub != nullptr ? hub->cell(s) : nullptr;
    if (config.drift.enabled) {
      // The engine sees local dense query ids; translate drift membership
      // from the global ids so the drifting subset is the same queries —
      // and every tuple the same factors — as in the single-shard run.
      const std::vector<int32_t>& to_global = sharded.query_id_maps[i];
      config.drift.applies.assign(to_global.size(), 0);
      for (size_t local = 0; local < to_global.size(); ++local) {
        config.drift.applies[local] =
            options.drift.AppliesTo(to_global[local]) ? 1 : 0;
      }
    }
    std::unique_ptr<sched::Scheduler> scheduler =
        sched::CreateScheduler(policy);
    exec::Engine engine(&sub_plans[i], &sub_arrivals[i], config,
                        scheduler.get(), &collectors[i]);
    counters[i] = engine.Run();
    ShardRunStats& stats = sharded.shard_stats[i];
    stats.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    stats.max_rss_kb = CurrentPeakRssKb();
    stats.busy_seconds = counters[i].busy_time;
    stats.end_seconds = counters[i].end_time;
  };

  int exec_threads = options.shard_threads > 0 ? options.shard_threads
                                               : ThreadPool::DefaultThreads();
  exec_threads = std::max(1, std::min(exec_threads, num_shards));
  const auto shard_has_work = [&sharded](int s) {
    return sharded.shard_stats[static_cast<size_t>(s)].num_queries > 0;
  };
  if (exec_threads <= 1) {
    for (int s = 0; s < num_shards; ++s) {
      if (shard_has_work(s)) run_shard(s);
    }
  } else {
    ThreadPool exec_pool(exec_threads);
    std::vector<std::future<void>> running;
    for (int s = 0; s < num_shards; ++s) {
      if (!shard_has_work(s)) continue;
      running.push_back(exec_pool.Submit([&run_shard, s] { run_shard(s); }));
    }
    for (std::future<void>& f : running) f.get();
  }

  // Deterministic aggregation: shards are merged in shard order, and every
  // aggregate merges exactly (see RunCounters::Merge / QosCollector::
  // MergeFrom), so the merged result is independent of execution timing.
  sharded.result.policy_name = sched::CreateScheduler(policy)->name();
  metrics::QosCollector merged(options.qos);
  bool first = true;
  for (int s = 0; s < num_shards; ++s) {
    if (!shard_has_work(s)) continue;
    const size_t i = static_cast<size_t>(s);
    merged.MergeFrom(collectors[i], sharded.query_id_maps[i]);
    if (first) {
      sharded.result.counters = counters[i];
      first = false;
    } else {
      sharded.result.counters.Merge(counters[i]);
    }
  }
  sharded.result.qos = merged.Snapshot();
  // Shed tuples never reached any shard's collector; surface the merged
  // loss on the snapshot, mirroring the single-shard path.
  sharded.result.qos.shed_count = sharded.result.counters.tuples_shed;
  sharded.result.qos.shed_ratio = sharded.result.counters.ShedRatio();
  return sharded;
}

ShardedRunResult SimulateSharded(
    const query::Workload& workload, const sched::PolicyConfig& policy,
    const SimulationOptions& options,
    const std::vector<obs::EventTracer*>* shard_tracers) {
  return SimulateShardedPlan(workload.plan, workload.arrivals, policy,
                             options, shard_tracers);
}

}  // namespace aqsios::core
