#include "core/sharded_dsms.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "core/experiment.h"
#include "exec/engine.h"

namespace aqsios::core {

double ShardedRunResult::LoadImbalance() const {
  if (shard_stats.empty()) return 1.0;
  double max_busy = 0.0;
  double total_busy = 0.0;
  for (const ShardRunStats& stats : shard_stats) {
    max_busy = std::max(max_busy, stats.busy_seconds);
    total_busy += stats.busy_seconds;
  }
  if (total_busy <= 0.0) return 1.0;
  return max_busy / (total_busy / static_cast<double>(shard_stats.size()));
}

ShardedRunResult SimulateShardedPlan(
    const query::GlobalPlan& plan, const stream::ArrivalTable& arrivals,
    const sched::PolicyConfig& policy, const SimulationOptions& options,
    const std::vector<obs::EventTracer*>* shard_tracers) {
  const int num_shards = options.shards;
  AQSIOS_CHECK_GE(num_shards, 1);
  if (shard_tracers != nullptr) {
    AQSIOS_CHECK_EQ(shard_tracers->size(), static_cast<size_t>(num_shards));
  }

  ShardedRunResult sharded;
  sharded.assignment =
      sched::AssignShards(plan, num_shards, options.shard_seed);
  sharded.query_id_maps.resize(static_cast<size_t>(num_shards));
  sharded.shard_stats.resize(static_cast<size_t>(num_shards));
  obs::TelemetryHub* hub = options.telemetry;
  if (hub != nullptr) {
    AQSIOS_CHECK_GE(hub->num_shards(), num_shards)
        << "telemetry hub has fewer cells than shards";
  }
  for (int s = 0; s < num_shards; ++s) {
    ShardRunStats& stats = sharded.shard_stats[static_cast<size_t>(s)];
    stats.shard = s;
    stats.num_queries = static_cast<int>(
        sharded.assignment.queries_of_shard[static_cast<size_t>(s)].size());
    if (hub != nullptr) hub->SetShardQueries(s, stats.num_queries);
  }

  // The §9.2 overhead unit is system-wide: every shard charges the *full*
  // plan's cheapest operator cost, not its sub-plan's.
  const SimTime min_op_cost = plan.MinOperatorCost();

  // Sub-plans: local dense query ids for the engine's tables; global
  // SharingGroup::id preserved so shared-leaf frozen draws are
  // shard-invariant. A group's members all share the group anchor, so the
  // whole group lands on one shard by construction.
  std::vector<query::GlobalPlan> sub_plans(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    const std::vector<query::QueryId>& members =
        sharded.assignment.queries_of_shard[static_cast<size_t>(s)];
    if (members.empty()) continue;
    std::vector<int> local_of_global(
        static_cast<size_t>(plan.num_queries()), -1);
    std::vector<query::CompiledQuery> compiled;
    compiled.reserve(members.size());
    std::vector<int32_t>& to_global =
        sharded.query_id_maps[static_cast<size_t>(s)];
    to_global.reserve(members.size());
    for (query::QueryId global : members) {
      const query::CompiledQuery& q = plan.query(global);
      query::QuerySpec spec = q.spec();
      local_of_global[static_cast<size_t>(global)] =
          static_cast<int>(compiled.size());
      spec.id = static_cast<query::QueryId>(compiled.size());
      to_global.push_back(global);
      compiled.emplace_back(std::move(spec), q.selectivity_mode());
    }
    std::vector<query::SharingGroup> groups;
    for (const query::SharingGroup& group : plan.sharing_groups()) {
      if (sharded.assignment.shard_of_query[static_cast<size_t>(
              group.members.front())] != s) {
        continue;
      }
      query::SharingGroup local = group;  // keeps the global group id
      for (query::QueryId& member : local.members) {
        member = local_of_global[static_cast<size_t>(member)];
        AQSIOS_CHECK_GE(member, 0) << "sharing group split across shards";
      }
      groups.push_back(std::move(local));
    }
    sub_plans[static_cast<size_t>(s)] = query::GlobalPlan(
        std::move(compiled), std::move(groups), plan.num_streams());
  }

  // Arrival routing. All K consumers must drain concurrently while the
  // producer pushes (a full ring blocks the producer), so the collect pool
  // has exactly K workers and the caller thread produces.
  std::vector<stream::ArrivalTable> sub_arrivals(
      static_cast<size_t>(num_shards));
  {
    sched::ShardRouter router(plan, sharded.assignment,
                              sched::ShardRouter::kDefaultRingCapacity,
                              options.stall);
    // Admission control sits on the producer side of the rings: rejected
    // arrivals are decided purely by the time-ordered table walk, so the
    // admitted sub-tables — and therefore all downstream results — stay
    // deterministic regardless of ring/thread timing.
    std::unique_ptr<sched::AdmissionController> admission;
    if (options.admission.enabled) {
      admission = std::make_unique<sched::AdmissionController>(
          plan, sharded.assignment, options.admission);
      router.AttachAdmission(admission.get());
    }
    ThreadPool collect_pool(num_shards);
    std::vector<std::future<void>> draining;
    draining.reserve(static_cast<size_t>(num_shards));
    for (int s = 0; s < num_shards; ++s) {
      draining.push_back(collect_pool.Submit([&router, &sub_arrivals, s] {
        router.Collect(s, &sub_arrivals[static_cast<size_t>(s)]);
      }));
    }
    router.Route(arrivals);
    for (std::future<void>& f : draining) f.get();
    for (int s = 0; s < num_shards; ++s) {
      ShardRunStats& stats = sharded.shard_stats[static_cast<size_t>(s)];
      stats.arrivals = router.routed_counts()[static_cast<size_t>(s)];
      if (admission != nullptr) {
        stats.admission_dropped =
            admission->dropped_per_shard()[static_cast<size_t>(s)];
      }
      // The routing/admission pass runs before any shard engine; publish
      // its per-shard outcome into the hub so the sampler sees routed and
      // rejected counts for the whole execution phase.
      if (hub != nullptr) {
        hub->SetRouted(s, stats.arrivals);
        hub->SetAdmissionRejected(s, stats.admission_dropped);
      }
    }
  }

  // Execute the shards. Each run is single-threaded and deterministic over
  // its sub-plan + sub-table, so dispatch order and thread count change
  // only wall_ms / max_rss_kb.
  std::vector<metrics::QosCollector> collectors;
  collectors.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) collectors.emplace_back(options.qos);
  std::vector<exec::RunCounters> counters(static_cast<size_t>(num_shards));

  const auto run_shard = [&](int s) {
    const size_t i = static_cast<size_t>(s);
    const auto start = std::chrono::steady_clock::now();
    exec::EngineConfig config = MakeEngineConfig(options, policy, min_op_cost);
    config.tracer =
        shard_tracers != nullptr ? (*shard_tracers)[i] : nullptr;
    config.telemetry = hub != nullptr ? hub->cell(s) : nullptr;
    std::unique_ptr<sched::Scheduler> scheduler =
        sched::CreateScheduler(policy);
    exec::Engine engine(&sub_plans[i], &sub_arrivals[i], config,
                        scheduler.get(), &collectors[i]);
    counters[i] = engine.Run();
    ShardRunStats& stats = sharded.shard_stats[i];
    stats.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    stats.max_rss_kb = CurrentPeakRssKb();
    stats.busy_seconds = counters[i].busy_time;
    stats.end_seconds = counters[i].end_time;
  };

  int exec_threads = options.shard_threads > 0 ? options.shard_threads
                                               : ThreadPool::DefaultThreads();
  exec_threads = std::max(1, std::min(exec_threads, num_shards));
  const auto shard_has_work = [&sharded](int s) {
    return sharded.shard_stats[static_cast<size_t>(s)].num_queries > 0;
  };
  if (exec_threads <= 1) {
    for (int s = 0; s < num_shards; ++s) {
      if (shard_has_work(s)) run_shard(s);
    }
  } else {
    ThreadPool exec_pool(exec_threads);
    std::vector<std::future<void>> running;
    for (int s = 0; s < num_shards; ++s) {
      if (!shard_has_work(s)) continue;
      running.push_back(exec_pool.Submit([&run_shard, s] { run_shard(s); }));
    }
    for (std::future<void>& f : running) f.get();
  }

  // Deterministic aggregation: shards are merged in shard order, and every
  // aggregate merges exactly (see RunCounters::Merge / QosCollector::
  // MergeFrom), so the merged result is independent of execution timing.
  sharded.result.policy_name = sched::CreateScheduler(policy)->name();
  metrics::QosCollector merged(options.qos);
  bool first = true;
  for (int s = 0; s < num_shards; ++s) {
    if (!shard_has_work(s)) continue;
    const size_t i = static_cast<size_t>(s);
    merged.MergeFrom(collectors[i], sharded.query_id_maps[i]);
    if (first) {
      sharded.result.counters = counters[i];
      first = false;
    } else {
      sharded.result.counters.Merge(counters[i]);
    }
  }
  sharded.result.qos = merged.Snapshot();
  // Shed tuples never reached any shard's collector; surface the merged
  // loss on the snapshot, mirroring the single-shard path.
  sharded.result.qos.shed_count = sharded.result.counters.tuples_shed;
  sharded.result.qos.shed_ratio = sharded.result.counters.ShedRatio();
  return sharded;
}

ShardedRunResult SimulateSharded(
    const query::Workload& workload, const sched::PolicyConfig& policy,
    const SimulationOptions& options,
    const std::vector<obs::EventTracer*>* shard_tracers) {
  return SimulateShardedPlan(workload.plan, workload.arrivals, policy,
                             options, shard_tracers);
}

}  // namespace aqsios::core
