#include "core/report.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace aqsios::core {

std::string JsonWriter::Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // key already emitted the separator
  }
  if (has_sibling_.back()) out_ += ',';
  has_sibling_.back() = true;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_sibling_.push_back(false);
}

void JsonWriter::EndObject() {
  AQSIOS_CHECK_GT(has_sibling_.size(), 1u) << "unbalanced EndObject";
  has_sibling_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_sibling_.push_back(false);
}

void JsonWriter::EndArray() {
  AQSIOS_CHECK_GT(has_sibling_.size(), 1u) << "unbalanced EndArray";
  has_sibling_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(const std::string& name) {
  if (has_sibling_.back()) out_ += ',';
  has_sibling_.back() = true;
  out_ += '"';
  out_ += Escape(name);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
}

void JsonWriter::Number(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  out_ += buffer;
}

void JsonWriter::Number(int64_t value) {
  BeforeValue();
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRId64, value);
  out_ += buffer;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

namespace {

void WriteQos(JsonWriter& json, const metrics::QosSnapshot& qos) {
  json.BeginObject();
  json.Key("tuples_emitted");
  json.Number(qos.tuples_emitted);
  json.Key("avg_response_ms");
  json.Number(SimTimeToMillis(qos.avg_response));
  json.Key("max_response_ms");
  json.Number(SimTimeToMillis(qos.max_response));
  json.Key("avg_slowdown");
  json.Number(qos.avg_slowdown);
  json.Key("max_slowdown");
  json.Number(qos.max_slowdown);
  json.Key("l2_slowdown");
  json.Number(qos.l2_slowdown);
  json.Key("rms_slowdown");
  json.Number(qos.rms_slowdown);
  json.Key("p50_slowdown");
  json.Number(qos.p50_slowdown);
  json.Key("p99_slowdown");
  json.Number(qos.p99_slowdown);
  if (!qos.per_query_slowdown.empty()) {
    json.Key("jain_fairness");
    json.Number(qos.JainFairnessIndex());
  }
  if (!qos.per_class_slowdown.empty()) {
    json.Key("per_class_avg_slowdown");
    json.BeginArray();
    for (const auto& [key, stats] : qos.per_class_slowdown) {
      json.BeginObject();
      json.Key("cost_class");
      json.Number(static_cast<int64_t>(key.cost_class));
      json.Key("selectivity_decile");
      json.Number(static_cast<int64_t>(key.selectivity_decile));
      json.Key("count");
      json.Number(stats.count());
      json.Key("mean");
      json.Number(stats.Mean());
      json.EndObject();
    }
    json.EndArray();
  }
  json.EndObject();
}

void WriteCounters(JsonWriter& json, const exec::RunCounters& counters) {
  json.BeginObject();
  json.Key("scheduling_points");
  json.Number(counters.scheduling_points);
  json.Key("unit_executions");
  json.Number(counters.unit_executions);
  json.Key("operator_invocations");
  json.Number(counters.operator_invocations);
  json.Key("tuples_emitted");
  json.Number(counters.tuples_emitted);
  json.Key("tuples_filtered");
  json.Number(counters.tuples_filtered);
  json.Key("composites_generated");
  json.Number(counters.composites_generated);
  json.Key("overhead_operations");
  json.Number(counters.overhead_operations);
  json.Key("adaptation_ticks");
  json.Number(counters.adaptation_ticks);
  json.Key("busy_seconds");
  json.Number(counters.busy_time);
  json.Key("overhead_seconds");
  json.Number(counters.overhead_time);
  json.Key("end_seconds");
  json.Number(counters.end_time);
  json.Key("measured_utilization");
  json.Number(counters.MeasuredUtilization());
  json.Key("peak_queued_tuples");
  json.Number(counters.peak_queued_tuples);
  json.Key("avg_queued_tuples");
  json.Number(counters.avg_queued_tuples);
  json.EndObject();
}

}  // namespace

std::string RunResultToJson(const RunResult& result) {
  JsonWriter json;
  json.BeginObject();
  json.Key("policy");
  json.String(result.policy_name);
  json.Key("qos");
  WriteQos(json, result.qos);
  json.Key("counters");
  WriteCounters(json, result.counters);
  json.EndObject();
  return json.str();
}

void WriteSweepCells(JsonWriter& json, const std::vector<SweepCell>& cells) {
  json.BeginArray();
  for (const SweepCell& cell : cells) {
    json.BeginObject();
    json.Key("utilization");
    json.Number(cell.utilization);
    json.Key("policy");
    json.String(cell.policy);
    json.Key("wall_ms");
    json.Number(cell.wall_ms);
    json.Key("max_rss_kb");
    json.Number(cell.max_rss_kb);
    json.Key("qos");
    WriteQos(json, cell.result.qos);
    json.EndObject();
  }
  json.EndArray();
}

std::string SweepToJson(const std::vector<SweepCell>& cells) {
  JsonWriter json;
  WriteSweepCells(json, cells);
  return json.str();
}

}  // namespace aqsios::core
