#include "core/report.h"

#include "obs/registry.h"

namespace aqsios::core {

namespace {

void WriteQos(JsonWriter& json, const metrics::QosSnapshot& qos) {
  json.BeginObject();
  json.Key("tuples_emitted");
  json.Number(qos.tuples_emitted);
  if (qos.shed_count > 0) {
    // Shedding engaged; runs without shedding serialize byte-identically to
    // reports written before load shedding existed.
    json.Key("shed_count");
    json.Number(qos.shed_count);
    json.Key("shed_ratio");
    json.Number(qos.shed_ratio);
  }
  json.Key("avg_response_ms");
  json.Number(SimTimeToMillis(qos.avg_response));
  json.Key("max_response_ms");
  json.Number(SimTimeToMillis(qos.max_response));
  json.Key("avg_slowdown");
  json.Number(qos.avg_slowdown);
  json.Key("max_slowdown");
  json.Number(qos.max_slowdown);
  json.Key("l2_slowdown");
  json.Number(qos.l2_slowdown);
  json.Key("rms_slowdown");
  json.Number(qos.rms_slowdown);
  json.Key("p50_slowdown");
  json.Number(qos.p50_slowdown);
  json.Key("p95_slowdown");
  json.Number(qos.p95_slowdown);
  json.Key("p99_slowdown");
  json.Number(qos.p99_slowdown);
  json.Key("p999_slowdown");
  json.Number(qos.p999_slowdown);
  if (!qos.per_query_slowdown.empty()) {
    json.Key("jain_fairness");
    json.Number(qos.JainFairnessIndex());
  }
  if (!qos.per_class_slowdown.empty()) {
    json.Key("per_class_avg_slowdown");
    json.BeginArray();
    for (const auto& [key, stats] : qos.per_class_slowdown) {
      json.BeginObject();
      json.Key("cost_class");
      json.Number(static_cast<int64_t>(key.cost_class));
      json.Key("selectivity_decile");
      json.Number(static_cast<int64_t>(key.selectivity_decile));
      json.Key("count");
      json.Number(stats.count());
      json.Key("mean");
      json.Number(stats.Mean());
      json.EndObject();
    }
    json.EndArray();
  }
  json.EndObject();
}

void WriteCounters(JsonWriter& json, const exec::RunCounters& counters) {
  json.BeginObject();
  json.Key("scheduling_points");
  json.Number(counters.scheduling_points);
  json.Key("unit_executions");
  json.Number(counters.unit_executions);
  json.Key("operator_invocations");
  json.Number(counters.operator_invocations);
  json.Key("tuples_emitted");
  json.Number(counters.tuples_emitted);
  json.Key("tuples_filtered");
  json.Number(counters.tuples_filtered);
  json.Key("composites_generated");
  json.Number(counters.composites_generated);
  json.Key("overhead_operations");
  json.Number(counters.overhead_operations);
  json.Key("adaptation_ticks");
  json.Number(counters.adaptation_ticks);
  json.Key("busy_seconds");
  json.Number(counters.busy_time);
  json.Key("overhead_seconds");
  json.Number(counters.overhead_time);
  json.Key("end_seconds");
  json.Number(counters.end_time);
  json.Key("measured_utilization");
  json.Number(counters.MeasuredUtilization());
  json.Key("peak_queued_tuples");
  json.Number(counters.peak_queued_tuples);
  json.Key("avg_queued_tuples");
  json.Number(counters.avg_queued_tuples);
  json.Key("queue_length");
  obs::WriteSummaryJson(json, counters.queue_length);
  json.Key("exec_busy_seconds");
  obs::WriteSummaryJson(json, counters.exec_busy);
  if (counters.train_dispatches > 0) {
    // Batched-dispatch shape; only present when the engine ran its tuple
    // train path, so per-tuple runs (batch_size 1) serialize byte-identically
    // to reports written before batching existed.
    json.Key("trains");
    json.BeginObject();
    json.Key("dispatches");
    json.Number(counters.train_dispatches);
    json.Key("tuples");
    json.Number(counters.train_tuples);
    json.Key("max_tuples");
    json.Number(counters.max_train_tuples);
    json.Key("mean_tuples");
    json.Number(static_cast<double>(counters.train_tuples) /
                static_cast<double>(counters.train_dispatches));
    json.EndObject();
  }
  if (counters.tuples_offered > 0) {
    // Load shedding enabled (even if nothing was shed); disabled runs keep
    // serializing byte-identically to pre-shedding reports.
    json.Key("shed");
    json.BeginObject();
    json.Key("offered");
    json.Number(counters.tuples_offered);
    json.Key("shed");
    json.Number(counters.tuples_shed);
    json.Key("ratio");
    json.Number(counters.ShedRatio());
    json.EndObject();
  }
  if (counters.calibration_epochs > 0) {
    // Online calibration enabled; disabled runs keep serializing
    // byte-identically to pre-calibration reports.
    json.Key("calibration");
    json.BeginObject();
    json.Key("epochs");
    json.Number(counters.calibration_epochs);
    json.Key("updates");
    json.Number(counters.calibration_updates);
    json.Key("rekeys");
    json.Number(counters.calibration_rekeys);
    json.Key("cost_drift");
    json.Number(counters.calibration_cost_drift);
    json.Key("selectivity_drift");
    json.Number(counters.calibration_selectivity_drift);
    json.EndObject();
  }
  json.EndObject();
}

/// The per-policy decision shape: how many scheduling points the run took
/// and what an average decision cost/examined (Figures 13–14 context).
void WriteDecisions(JsonWriter& json, const exec::RunCounters& counters) {
  const double points = static_cast<double>(counters.scheduling_points);
  json.BeginObject();
  json.Key("scheduling_points");
  json.Number(counters.scheduling_points);
  json.Key("candidates_total");
  json.Number(counters.decision_candidates);
  json.Key("mean_candidates");
  json.Number(points > 0.0
                  ? static_cast<double>(counters.decision_candidates) / points
                  : 0.0);
  json.Key("mean_priority_computations");
  json.Number(
      points > 0.0
          ? static_cast<double>(counters.priority_computations) / points
          : 0.0);
  json.EndObject();
}

void WriteAttribution(JsonWriter& json,
                      const obs::StageAttribution& attribution) {
  json.BeginObject();
  json.Key("sample_every");
  json.Number(attribution.sample_every);
  json.Key("samples");
  json.Number(attribution.samples());
  json.Key("mean_response_ms");
  json.Number(SimTimeToMillis(attribution.response.Mean()));
  json.Key("mean_queue_wait_ms");
  json.Number(SimTimeToMillis(attribution.queue_wait.Mean()));
  json.Key("mean_sched_overhead_ms");
  json.Number(SimTimeToMillis(attribution.sched_overhead.Mean()));
  json.Key("mean_processing_ms");
  json.Number(SimTimeToMillis(attribution.processing.Mean()));
  json.Key("dependency_samples");
  json.Number(attribution.dependency_delay.count());
  json.Key("mean_dependency_delay_ms");
  json.Number(SimTimeToMillis(attribution.dependency_delay.Mean()));
  json.EndObject();
}

}  // namespace

std::string RunResultToJson(const RunResult& result) {
  JsonWriter json;
  json.BeginObject();
  json.Key("policy");
  json.String(result.policy_name);
  json.Key("qos");
  WriteQos(json, result.qos);
  json.Key("counters");
  WriteCounters(json, result.counters);
  json.Key("decisions");
  WriteDecisions(json, result.counters);
  if (result.counters.attribution.samples() > 0) {
    json.Key("attribution");
    WriteAttribution(json, result.counters.attribution);
  }
  json.EndObject();
  return json.str();
}

obs::HealthVerdict RestateHealth(const RunResult& result,
                                 const obs::WatchdogConfig& config,
                                 int64_t arrivals_routed,
                                 int64_t admission_rejected) {
  obs::RunEndStats stats;
  stats.peak_queued_tuples = result.counters.peak_queued_tuples;
  stats.tuples_offered = result.counters.tuples_offered;
  stats.tuples_shed = result.counters.tuples_shed;
  stats.arrivals_routed = arrivals_routed;
  stats.admission_rejected = admission_rejected;
  stats.p95_slowdown = result.qos.p95_slowdown;
  stats.p99_slowdown = result.qos.p99_slowdown;
  return obs::FinalizeHealth(config, stats);
}

void WriteHealthJson(JsonWriter& json, const obs::HealthVerdict& verdict) {
  json.BeginObject();
  json.Key("healthy");
  json.Bool(verdict.healthy);
  json.Key("verdict");
  json.String(verdict.ToString());
  json.Key("queue_divergence");
  json.Bool(verdict.queue_divergence);
  json.Key("shed_spike");
  json.Bool(verdict.shed_spike);
  json.Key("admission_spike");
  json.Bool(verdict.admission_spike);
  json.Key("slo_breach");
  json.Bool(verdict.slo_breach);
  json.EndObject();
}

std::string RunResultToJsonWithHealth(const RunResult& result,
                                      const obs::HealthVerdict& verdict) {
  // Re-render the standard object and splice the health block before the
  // closing brace: the base report stays byte-identical up to that point.
  std::string base = RunResultToJson(result);
  JsonWriter health;
  WriteHealthJson(health, verdict);
  base.pop_back();  // trailing '}'
  base += ",\"health\":";
  base += health.str();
  base += "}";
  return base;
}

void WriteSweepCells(JsonWriter& json, const std::vector<SweepCell>& cells) {
  json.BeginArray();
  for (const SweepCell& cell : cells) {
    json.BeginObject();
    json.Key("utilization");
    json.Number(cell.utilization);
    json.Key("policy");
    json.String(cell.policy);
    json.Key("wall_ms");
    json.Number(cell.wall_ms);
    json.Key("max_rss_kb");
    json.Number(cell.max_rss_kb);
    if (!cell.shard_stats.empty()) {
      // Sharded cells only: unsharded sweep JSON stays byte-identical.
      json.Key("load_imbalance");
      json.Number(cell.load_imbalance);
      json.Key("shards");
      json.BeginArray();
      for (const ShardRunStats& shard : cell.shard_stats) {
        json.BeginObject();
        json.Key("shard");
        json.Number(static_cast<int64_t>(shard.shard));
        json.Key("num_queries");
        json.Number(static_cast<int64_t>(shard.num_queries));
        json.Key("arrivals");
        json.Number(shard.arrivals);
        json.Key("wall_ms");
        json.Number(shard.wall_ms);
        json.Key("max_rss_kb");
        json.Number(shard.max_rss_kb);
        json.Key("busy_seconds");
        json.Number(shard.busy_seconds);
        json.Key("end_seconds");
        json.Number(shard.end_seconds);
        if (shard.admission_dropped > 0) {
          // Admission control engaged; runs without it keep serializing
          // byte-identically to pre-admission sweep reports.
          json.Key("admission_dropped");
          json.Number(shard.admission_dropped);
        }
        if (shard.migrations > 0) {
          // Elastic rebalancing engaged; static runs keep serializing
          // byte-identically to pre-elastic sweep reports.
          json.Key("migrations");
          json.Number(shard.migrations);
        }
        if (shard.steals > 0) {
          json.Key("steals");
          json.Number(shard.steals);
        }
        json.EndObject();
      }
      json.EndArray();
    }
    json.Key("qos");
    WriteQos(json, cell.result.qos);
    json.Key("counters");
    WriteCounters(json, cell.result.counters);
    json.Key("decisions");
    WriteDecisions(json, cell.result.counters);
    if (cell.result.counters.attribution.samples() > 0) {
      json.Key("attribution");
      WriteAttribution(json, cell.result.counters.attribution);
    }
    json.EndObject();
  }
  json.EndArray();
}

std::string SweepToJson(const std::vector<SweepCell>& cells) {
  JsonWriter json;
  WriteSweepCells(json, cells);
  return json.str();
}

}  // namespace aqsios::core
