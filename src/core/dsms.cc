#include "core/dsms.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "core/sharded_dsms.h"

namespace aqsios::core {

sched::SharingObjective ObjectiveForPolicy(sched::PolicyKind kind) {
  switch (kind) {
    case sched::PolicyKind::kBsd:
    case sched::PolicyKind::kBsdClustered:
      return sched::SharingObjective::kBsd;
    default:
      return sched::SharingObjective::kHnr;
  }
}

exec::EngineConfig MakeEngineConfig(const SimulationOptions& options,
                                    const sched::PolicyConfig& policy,
                                    SimTime min_operator_cost) {
  exec::EngineConfig engine_config;
  engine_config.level = options.level;
  engine_config.sharing_strategy = options.sharing_strategy;
  engine_config.sharing_objective = ObjectiveForPolicy(policy.kind);
  engine_config.overhead_op_cost =
      options.charge_scheduling_overhead ? min_operator_cost : 0.0;
  engine_config.adaptation = options.adaptation;
  engine_config.calibration = options.calibration;
  engine_config.drift = options.drift;
  engine_config.tracer = options.tracer;
  engine_config.attribution_sample_every = options.attribution_sample_every;
  engine_config.batch_size = options.batch_size;
  engine_config.batch_quantum = options.batch_quantum;
  engine_config.use_columnar_kernels = options.use_columnar_kernels;
  engine_config.shed = options.shed;
  return engine_config;
}

RunResult SimulatePlan(const query::GlobalPlan& plan,
                       const stream::ArrivalTable& arrivals,
                       const sched::PolicyConfig& policy,
                       const SimulationOptions& options) {
  if (options.shards > 1 || options.rebalance.enabled) {
    AQSIOS_CHECK(options.tracer == nullptr)
        << "a single tracer cannot serve concurrent shards; use "
           "SimulateShardedPlan with per-shard tracers (obs/shard_trace.h)";
    return SimulateShardedPlan(plan, arrivals, policy, options).result;
  }
  exec::EngineConfig engine_config =
      MakeEngineConfig(options, policy, plan.MinOperatorCost());
  if (options.telemetry != nullptr) {
    AQSIOS_CHECK_GE(options.telemetry->num_shards(), 1);
    engine_config.telemetry = options.telemetry->cell(0);
    options.telemetry->SetShardQueries(0, plan.num_queries());
  }

  std::unique_ptr<sched::Scheduler> scheduler = sched::CreateScheduler(policy);
  metrics::QosCollector collector(options.qos);
  exec::Engine engine(&plan, &arrivals, engine_config, scheduler.get(),
                      &collector);

  RunResult result;
  result.policy_name = scheduler->name();
  result.counters = engine.Run();
  result.qos = collector.Snapshot();
  // Shed tuples never reached the collector (slowdown stats are over
  // delivered tuples only); surface the loss on the snapshot explicitly.
  result.qos.shed_count = result.counters.tuples_shed;
  result.qos.shed_ratio = result.counters.ShedRatio();
  return result;
}

RunResult Simulate(const query::Workload& workload,
                   const sched::PolicyConfig& policy,
                   const SimulationOptions& options) {
  return SimulatePlan(workload.plan, workload.arrivals, policy, options);
}

Dsms::Dsms(query::SelectivityMode mode) : mode_(mode) {}

query::QueryId Dsms::AddQuery(query::QuerySpec spec) {
  spec.id = static_cast<query::QueryId>(specs_.size());
  // Validate eagerly so misconfigured specs fail at registration time.
  query::CompiledQuery compiled(spec, mode_);
  (void)compiled;
  specs_.push_back(std::move(spec));
  return specs_.back().id;
}

void Dsms::AddSharingGroup(std::vector<query::QueryId> members) {
  AQSIOS_CHECK_GE(members.size(), 2u);
  for (query::QueryId id : members) {
    AQSIOS_CHECK_GE(id, 0);
    AQSIOS_CHECK_LT(id, num_queries());
  }
  query::SharingGroup group;
  group.id = static_cast<int>(groups_.size());
  group.members = std::move(members);
  groups_.push_back(std::move(group));
}

void Dsms::SetArrivals(stream::ArrivalTable arrivals) {
  arrivals_ = std::move(arrivals);
}

RunResult Dsms::Run(const sched::PolicyConfig& policy,
                    const SimulationOptions& options) const {
  AQSIOS_CHECK(!specs_.empty()) << "no queries registered";
  AQSIOS_CHECK(!arrivals_.empty()) << "no arrivals set";

  stream::StreamId max_stream = 0;
  std::vector<query::CompiledQuery> compiled;
  compiled.reserve(specs_.size());
  for (const query::QuerySpec& spec : specs_) {
    compiled.emplace_back(spec, mode_);
    max_stream = std::max(max_stream, spec.left_stream);
    max_stream = std::max(max_stream, spec.right_stream);
  }
  for (const stream::Arrival& a : arrivals_.arrivals) {
    max_stream = std::max(max_stream, a.stream);
  }
  query::GlobalPlan plan(std::move(compiled), groups_, max_stream + 1);
  return SimulatePlan(plan, arrivals_, policy, options);
}

}  // namespace aqsios::core
