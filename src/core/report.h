// Machine-readable experiment reports.
//
// Bench binaries print human-readable tables; downstream plotting and
// regression tracking want structure. This module renders RunResults and
// sweep grids as JSON (a minimal self-contained writer — values are
// numbers, strings, arrays, and objects; strings are escaped per RFC 8259).

#ifndef AQSIOS_CORE_REPORT_H_
#define AQSIOS_CORE_REPORT_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "core/experiment.h"
#include "obs/telemetry.h"

namespace aqsios::core {

/// The JSON writer moved to common/json.h so layers below core (the
/// observability exports) can share it; the alias keeps existing callers
/// spelled `core::JsonWriter` working.
using JsonWriter = ::aqsios::JsonWriter;

/// Serializes one run: policy, QoS metrics, and execution counters.
std::string RunResultToJson(const RunResult& result);

/// Restates the health watchdog's run-end verdict deterministically from a
/// run's merged counters (obs::FinalizeHealth over peak queue, shed ratio,
/// admission drops, and the p9x slowdown). Unlike the live watchdog events
/// — which are wall-clock-timed and quarantined from the result surface —
/// this verdict is a pure function of the deterministic result, so tests
/// can pin it. `arrivals_routed`/`admission_rejected` come from the sharded
/// router pass (0/0 for single-shard runs, which have no admission lane).
obs::HealthVerdict RestateHealth(const RunResult& result,
                                 const obs::WatchdogConfig& config,
                                 int64_t arrivals_routed = 0,
                                 int64_t admission_rejected = 0);

/// Writes a HealthVerdict as a JSON object into an in-progress document.
void WriteHealthJson(JsonWriter& json, const obs::HealthVerdict& verdict);

/// RunResultToJson plus a trailing "health" block carrying the verdict.
/// Separate entry point — plain RunResultToJson stays byte-identical to
/// pre-telemetry reports whether or not a sampler was attached.
std::string RunResultToJsonWithHealth(const RunResult& result,
                                      const obs::HealthVerdict& verdict);

/// Writes a sweep grid into an in-progress `json` document: an array of
/// {utilization, policy, wall_ms, max_rss_kb, qos...} cells. Exposed so
/// composite reports (e.g. the unified bench_sweep_all driver) can embed
/// grids inside a larger object.
void WriteSweepCells(JsonWriter& json, const std::vector<SweepCell>& cells);

/// Serializes a sweep grid as a standalone JSON array (see WriteSweepCells).
std::string SweepToJson(const std::vector<SweepCell>& cells);

}  // namespace aqsios::core

#endif  // AQSIOS_CORE_REPORT_H_
