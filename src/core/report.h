// Machine-readable experiment reports.
//
// Bench binaries print human-readable tables; downstream plotting and
// regression tracking want structure. This module renders RunResults and
// sweep grids as JSON (a minimal self-contained writer — values are
// numbers, strings, arrays, and objects; strings are escaped per RFC 8259).

#ifndef AQSIOS_CORE_REPORT_H_
#define AQSIOS_CORE_REPORT_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "core/experiment.h"

namespace aqsios::core {

/// The JSON writer moved to common/json.h so layers below core (the
/// observability exports) can share it; the alias keeps existing callers
/// spelled `core::JsonWriter` working.
using JsonWriter = ::aqsios::JsonWriter;

/// Serializes one run: policy, QoS metrics, and execution counters.
std::string RunResultToJson(const RunResult& result);

/// Writes a sweep grid into an in-progress `json` document: an array of
/// {utilization, policy, wall_ms, max_rss_kb, qos...} cells. Exposed so
/// composite reports (e.g. the unified bench_sweep_all driver) can embed
/// grids inside a larger object.
void WriteSweepCells(JsonWriter& json, const std::vector<SweepCell>& cells);

/// Serializes a sweep grid as a standalone JSON array (see WriteSweepCells).
std::string SweepToJson(const std::vector<SweepCell>& cells);

}  // namespace aqsios::core

#endif  // AQSIOS_CORE_REPORT_H_
