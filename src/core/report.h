// Machine-readable experiment reports.
//
// Bench binaries print human-readable tables; downstream plotting and
// regression tracking want structure. This module renders RunResults and
// sweep grids as JSON (a minimal self-contained writer — values are
// numbers, strings, arrays, and objects; strings are escaped per RFC 8259).

#ifndef AQSIOS_CORE_REPORT_H_
#define AQSIOS_CORE_REPORT_H_

#include <string>
#include <vector>

#include "core/experiment.h"

namespace aqsios::core {

/// Minimal JSON writer with explicit structure calls:
///
///   JsonWriter json;
///   json.BeginObject();
///   json.Key("policy"); json.String("BSD");
///   json.Key("avg_slowdown"); json.Number(2.9);
///   json.EndObject();
///   json.str(); // {"policy":"BSD","avg_slowdown":2.9}
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  /// Emits an object key; must be inside an object.
  void Key(const std::string& name);
  void String(const std::string& value);
  void Number(double value);
  void Number(int64_t value);
  void Bool(bool value);

  const std::string& str() const { return out_; }

  /// Escapes a string per JSON rules (quotes, backslash, control chars).
  static std::string Escape(const std::string& text);

 private:
  /// Emits a separating comma when a value follows a previous sibling.
  void BeforeValue();

  std::string out_;
  /// Per nesting level: whether a value was already emitted.
  std::vector<bool> has_sibling_ = {false};
  bool pending_key_ = false;
};

/// Serializes one run: policy, QoS metrics, and execution counters.
std::string RunResultToJson(const RunResult& result);

/// Writes a sweep grid into an in-progress `json` document: an array of
/// {utilization, policy, wall_ms, max_rss_kb, qos...} cells. Exposed so
/// composite reports (e.g. the unified bench_sweep_all driver) can embed
/// grids inside a larger object.
void WriteSweepCells(JsonWriter& json, const std::vector<SweepCell>& cells);

/// Serializes a sweep grid as a standalone JSON array (see WriteSweepCells).
std::string SweepToJson(const std::vector<SweepCell>& cells);

}  // namespace aqsios::core

#endif  // AQSIOS_CORE_REPORT_H_
