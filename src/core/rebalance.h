// Elastic shard rebalancing: the epoch-driven controller that closes the
// load_imbalance loop (docs/scaling.md).
//
// The static hash placement of AssignShards pins a hot sharing group to one
// shard for the whole run. The elastic runner (core/sharded_dsms.cc) instead
// advances all shards through shared virtual-time epochs; at each epoch
// barrier this controller folds the per-shard and per-group busy-time deltas
// into EWMAs and, when the shard imbalance (max/mean of the shard EWMAs)
// exceeds a hysteresis band, migrates whole placement groups from the
// hottest shard to the coolest. Everything here is a pure function of the
// counter sequence fed in — no wall clock, no thread timing — so elastic
// runs are deterministic and repeatable.

#ifndef AQSIOS_CORE_REBALANCE_H_
#define AQSIOS_CORE_REBALANCE_H_

#include <cstdint>
#include <vector>

#include "common/sim_time.h"

namespace aqsios::core {

/// Knobs of the elastic runner. `enabled` routes SimulatePlan through the
/// epoch-driven elastic path (any shard count, including 1 — where it is
/// byte-identical to the classic engine); everything else tunes the
/// controller.
struct RebalanceConfig {
  bool enabled = false;
  /// Virtual seconds between epoch barriers; 0 derives ~1/32 of the arrival
  /// span.
  double epoch_seconds = 0.0;
  /// EWMA smoothing of the per-epoch busy deltas (1 = last epoch only).
  double ewma_alpha = 0.5;
  /// Hysteresis band on the shard-imbalance ratio max/mean: migrations
  /// activate above `imbalance_high` and stay active until the ratio falls
  /// below `imbalance_low`.
  double imbalance_high = 1.2;
  double imbalance_low = 1.05;
  /// Migration budget per epoch (whole placement groups).
  int max_migrations_per_epoch = 1;
  /// Idle-shard work stealing of queued trains from stateless groups.
  bool steal = false;
  /// Largest train one steal hands off.
  int64_t steal_max_tuples = 1024;
  /// Donor shards must hold at least this backlog to be stolen from.
  int64_t steal_min_backlog = 256;
};

/// Per-epoch migration decisions. Greedy hottest-to-coolest: the largest
/// movable group whose move strictly lowers the projected maximum shard
/// load (the anti-ping-pong guard), repeated up to the per-epoch budget.
class RebalanceController {
 public:
  RebalanceController(const RebalanceConfig& config, int num_shards,
                      int num_groups);

  struct Migration {
    int group = 0;
    int from = 0;
    int to = 0;
  };

  /// Folds this epoch's busy-time deltas into the EWMAs and returns the
  /// migrations to perform (possibly none). `owner_of_group` is the current
  /// placement; the caller applies the returned moves and keeps it current.
  std::vector<Migration> OnEpoch(
      const std::vector<double>& shard_busy_delta,
      const std::vector<double>& group_busy_delta,
      const std::vector<int>& owner_of_group);

  /// Current max/mean shard-load ratio (1 when idle) — exposed for tests.
  double Imbalance() const;
  bool active() const { return active_; }

 private:
  RebalanceConfig config_;
  std::vector<double> shard_ewma_;
  std::vector<double> group_ewma_;
  bool active_ = false;
};

}  // namespace aqsios::core

#endif  // AQSIOS_CORE_REBALANCE_H_
