// Public facade of the aqsios-sched library.
//
// Two entry points:
//  * Simulate(workload, policy)   — run a generated §8 testbed workload under
//                                   a scheduling policy and return its QoS;
//  * Dsms                         — incremental API for applications:
//                                   register continuous queries, feed
//                                   arrivals, pick a policy, run.

#ifndef AQSIOS_CORE_DSMS_H_
#define AQSIOS_CORE_DSMS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/rebalance.h"
#include "exec/engine.h"
#include "metrics/qos.h"
#include "query/workload.h"
#include "sched/admission.h"
#include "sched/policy.h"
#include "sched/shard_router.h"

namespace aqsios::core {

struct SimulationOptions {
  exec::SchedulingLevel level = exec::SchedulingLevel::kQueryLevel;
  sched::SharingStrategy sharing_strategy = sched::SharingStrategy::kPdt;
  /// Charge scheduling overhead to the virtual clock, one cheapest-operator
  /// cost per priority computation/comparison (§9.2, Figures 13–14).
  bool charge_scheduling_overhead = false;
  /// Run-time statistics monitoring and priority adaptation (§10's dynamic
  /// environment support). Query-level scheduling only.
  exec::AdaptationConfig adaptation;
  /// Online cost/selectivity calibration (sched/calibration.h,
  /// docs/calibration.md): decayed per-unit estimators feed epoch-batched
  /// targeted priority re-keys through the kinetic index. Query-level only;
  /// mutually exclusive with `adaptation` and with `rebalance`. Off by
  /// default — off is byte-identical to pre-calibration builds.
  sched::CalibrationConfig calibration;
  /// Mid-run statistics drift of a query subset (stream/drift.h): the
  /// workload scenario calibration exists for. Per-tuple dispatcher only
  /// (checked); off by default and byte-inert when off.
  stream::DriftConfig drift;
  metrics::QosCollector::Options qos;
  /// Optional event tracer forwarded to the engine (observation-only; the
  /// caller owns the tracer and exports it after the run).
  obs::EventTracer* tracer = nullptr;
  /// Optional live-telemetry hub (obs/telemetry.h, docs/telemetry.md). Must
  /// have at least `shards` cells; each shard engine publishes into its own
  /// cell and the router pass publishes routed/admission counts, so a
  /// TelemetrySampler thread can watch the run live. Observation-only:
  /// attaching a hub never changes any result (pinned by
  /// tests/obs_telemetry_test.cc). The caller owns the hub; it must outlive
  /// the run.
  obs::TelemetryHub* telemetry = nullptr;
  /// Per-tuple stage-attribution sample period (see obs/attribution.h);
  /// 0 disables attribution.
  int64_t attribution_sample_every = 0;
  /// Tuple-train batching (exec::EngineConfig::batch_size): maximum tuples
  /// drained from the picked unit per scheduling decision. 1 = classic
  /// per-tuple dispatch (the default, bit-identical to the unbatched
  /// engine); 0 = drain the whole queue; k > 1 amortizes one decision —
  /// and its §9.2 overhead charge — over up to k tuples.
  int batch_size = 1;
  /// Optional time-quantum cap on the train (exec::EngineConfig::
  /// batch_quantum): expected-cost budget per dispatch in simulated
  /// seconds; 0 disables. Any positive value engages the batched
  /// dispatcher even at batch_size 1.
  SimTime batch_quantum = 0.0;
  /// Columnar (SoA) kernel execution of batched chain trains
  /// (exec::EngineConfig::use_columnar_kernels, docs/performance.md).
  /// Results are bit-identical either way; on by default, off measures the
  /// scalar train floor. Only engages when the batched dispatcher does.
  bool use_columnar_kernels = true;

  /// Shard-parallel runtime (core/sharded_dsms.h, docs/scaling.md): number
  /// of shards K the query population is partitioned into. 1 = the classic
  /// single-scheduler runtime, byte-identical to before sharding existed.
  /// K > 1 is a documented scheduling variant — K independent
  /// scheduler+engine pairs on private virtual clocks with exactly-merged
  /// metrics; results are deterministic in (workload, policy, K, shard_seed)
  /// and independent of shard_threads.
  int shards = 1;
  /// Worker threads executing shards; 0 = min(hardware threads, shards).
  /// Never affects results, only wall-clock.
  int shard_threads = 0;
  /// Seed of the shard-assignment hash (sched/shard_router.h):
  /// shard(q) = MixKeys(shard_seed, anchor(q)) mod K.
  uint64_t shard_seed = 0x5eedc0de;

  /// Elastic shard rebalancing and work stealing (core/rebalance.h,
  /// docs/scaling.md). Off by default — every existing configuration is
  /// byte-identical to pre-elastic builds. When enabled, the run takes the
  /// epoch-driven elastic path (for any `shards`, including 1, where it
  /// still reproduces the classic engine byte for byte) and whole placement
  /// groups migrate between shards when the busy-time imbalance exceeds the
  /// hysteresis band. Incompatible with tracer/adaptation/shed/admission
  /// (checked).
  RebalanceConfig rebalance;

  /// QoS-aware load shedding at the sources (exec::ShedConfig,
  /// docs/overload.md). Off by default: the engine and its reports stay
  /// byte-identical to pre-shedding builds.
  exec::ShedConfig shed;
  /// Per-class admission control at the shard router (sched/admission.h);
  /// only meaningful when shards > 1. Off by default.
  sched::AdmissionConfig admission;
  /// Router backpressure behaviour on a full shard ring
  /// (sched::StallPolicy); only meaningful when shards > 1. The default is
  /// lossless bounded backoff.
  sched::StallPolicy stall;
};

struct RunResult {
  std::string policy_name;
  metrics::QosSnapshot qos;
  exec::RunCounters counters;
};

/// The sharing objective matching a policy (BSD policies maximize Φ-based
/// aggregates; everything else uses the HNR objective).
sched::SharingObjective ObjectiveForPolicy(sched::PolicyKind kind);

/// Engine configuration implied by `options` for `policy`.
/// `min_operator_cost` is the §9.2 overhead unit (the *full* plan's
/// cheapest operator cost — system-wide even when the engine runs one
/// shard's sub-plan); it is applied only when charge_scheduling_overhead
/// is set.
exec::EngineConfig MakeEngineConfig(const SimulationOptions& options,
                                    const sched::PolicyConfig& policy,
                                    SimTime min_operator_cost);

/// Runs `workload` under `policy` and returns QoS metrics plus counters.
RunResult Simulate(const query::Workload& workload,
                   const sched::PolicyConfig& policy,
                   const SimulationOptions& options = {});

/// Lower-level variant for callers that assembled plan and arrivals
/// themselves.
RunResult SimulatePlan(const query::GlobalPlan& plan,
                       const stream::ArrivalTable& arrivals,
                       const sched::PolicyConfig& policy,
                       const SimulationOptions& options = {});

/// Incremental DSMS facade.
///
///   Dsms dsms;
///   auto google = dsms.AddQuery(spec_google);
///   dsms.SetArrivals(std::move(table));
///   RunResult r = dsms.Run(sched::PolicyConfig::Of(sched::PolicyKind::kHnr));
class Dsms {
 public:
  explicit Dsms(
      query::SelectivityMode mode = query::SelectivityMode::kIndependent);

  /// Registers a continuous query; QuerySpec::id is assigned by the DSMS.
  /// Returns the assigned id.
  query::QueryId AddQuery(query::QuerySpec spec);

  /// Declares that the given (already registered, single-stream) queries
  /// share their identical leaf operator.
  void AddSharingGroup(std::vector<query::QueryId> members);

  /// Sets the input arrivals (all streams merged, time-ordered).
  void SetArrivals(stream::ArrivalTable arrivals);

  int num_queries() const { return static_cast<int>(specs_.size()); }

  /// Compiles the registered queries and runs the simulation.
  RunResult Run(const sched::PolicyConfig& policy,
                const SimulationOptions& options = {}) const;

 private:
  query::SelectivityMode mode_;
  std::vector<query::QuerySpec> specs_;
  std::vector<query::SharingGroup> groups_;
  stream::ArrivalTable arrivals_;
};

}  // namespace aqsios::core

#endif  // AQSIOS_CORE_DSMS_H_
