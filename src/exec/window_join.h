// Symmetric hash join state for time-based sliding-window joins (§5).
//
// One instance per window-join operator. Tuples that survive their pre-join
// segment are hashed into their side's table and probe the opposite table
// for key matches within the window interval V (|ts_probe − ts_entry| ≤ V).
// Expired entries (older than probe − V) are evicted lazily during probes;
// this is safe because each side's tuples are processed in arrival order, so
// the probe timestamps hitting one table are non-decreasing. Inserts do not
// evict: the inserting side's timestamps say nothing about what the (possibly
// delayed) opposite side still needs to match.
//
// Bucket storage is arena-pooled (common/arena.h): each bucket is an
// intrusive FIFO list of nodes drawn from a per-state ObjectPool, so the
// steady-state insert/evict churn of the sliding window touches no heap
// allocator and consecutive inserts land contiguously. Iteration order is
// exactly the per-bucket insertion (FIFO) order the previous deque-based
// storage had, so probe results are unchanged bit for bit.

#ifndef AQSIOS_EXEC_WINDOW_JOIN_H_
#define AQSIOS_EXEC_WINDOW_JOIN_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "common/sim_time.h"
#include "query/query.h"
#include "stream/tuple.h"

namespace aqsios::exec {

class SymmetricHashJoinState {
 public:
  struct Entry {
    stream::ArrivalId id = 0;
    /// Source timestamp used by the window predicate; for composite
    /// entries, the max over constituents.
    SimTime timestamp = 0.0;
    /// System arrival time A_i (max over constituents for composites).
    SimTime arrival_time = 0.0;
    /// Earliest constituent arrival (min over constituents; == arrival_time
    /// for base tuples). arrival_time − first_arrival_time is the §5.1.2
    /// dependency delay the slowdown definition excludes.
    SimTime first_arrival_time = 0.0;
    /// Order-independent identity for frozen match draws: the arrival id
    /// for base tuples, a mix of constituent identities for composites.
    uint64_t identity = 0;
    /// Join input index of the latest-arriving constituent (slowdown
    /// trigger attribution in multi-join pipelines).
    int trigger_input = 0;
  };

  /// Time-based window. `ordered` declares that per-side insert timestamps
  /// AND per-table probe timestamps are non-decreasing, enabling window
  /// eviction. Stages fed by composites (whose timestamps are not monotone)
  /// must pass false; probes then scan the whole bucket and nothing is
  /// evicted.
  explicit SymmetricHashJoinState(SimTime window_seconds, bool ordered = true);

  /// Bucket nodes are pool-owned raw pointers: movable (arena chunks are
  /// address-stable), but not copyable.
  SymmetricHashJoinState(SymmetricHashJoinState&&) noexcept = default;
  SymmetricHashJoinState& operator=(SymmetricHashJoinState&&) noexcept =
      default;
  SymmetricHashJoinState(const SymmetricHashJoinState&) = delete;
  SymmetricHashJoinState& operator=(const SymmetricHashJoinState&) = delete;

  /// Tuple-count window: each side retains exactly its last `window_rows`
  /// inserted entries (CQL ROWS semantics); probes match all residents of
  /// the opposite side's bucket. (A named factory rather than a constructor
  /// so integer literals never collide with the SimTime overload.)
  static SymmetricHashJoinState RowWindow(int64_t window_rows);

  /// Inserts a surviving tuple into `side`'s hash table.
  void Insert(query::Side side, int32_t key, const Entry& entry);

  /// Collects the opposite table's entries matching `key` whose timestamps
  /// are within the window of `timestamp`. Entries expired relative to
  /// `timestamp` are evicted.
  void Probe(query::Side side, int32_t key, SimTime timestamp,
             std::vector<Entry>* candidates);

  /// Number of resident entries on `side`.
  int64_t size(query::Side side) const;

  /// Pool occupancy (live + recycled nodes), for tests and diagnostics.
  int64_t pooled_nodes() const { return pool_.live() + pool_.free_count(); }

 private:
  enum class WindowKind { kTime, kRow };

  SymmetricHashJoinState() = default;  // used by the RowWindow factory

  /// One resident tuple; storage comes from pool_, never the heap directly.
  struct Node {
    Entry entry;
    Node* next = nullptr;
  };

  /// FIFO bucket as an intrusive singly-linked list of pooled nodes. Head is
  /// the oldest insert (the eviction point), appends go to the tail, so a
  /// head-to-tail walk reproduces the old deque's iteration order exactly.
  struct Bucket {
    Node* head = nullptr;
    Node* tail = nullptr;
    bool empty() const { return head == nullptr; }
  };

  struct Table {
    std::unordered_map<int32_t, Bucket> buckets;
    /// Row windows: join keys in insertion order, for oldest-first eviction.
    std::deque<int32_t> insertion_order;
    int64_t size = 0;
  };

  Table& table(query::Side side) {
    return side == query::Side::kLeft ? left_ : right_;
  }
  const Table& table(query::Side side) const {
    return side == query::Side::kLeft ? left_ : right_;
  }

  /// Appends `entry` to the bucket tail (callers account Table::size).
  void PushBack(Bucket& bucket, const Entry& entry);
  /// Releases the bucket head back to the pool and decrements `t.size`.
  void PopFront(Table& t, Bucket& bucket);

  /// Drops entries in `bucket` with timestamp < horizon (from the head;
  /// entries are inserted in non-decreasing timestamp order per side).
  void EvictExpired(Table& t, Bucket& bucket, SimTime horizon);

  WindowKind kind_ = WindowKind::kTime;
  SimTime window_ = 0.0;
  int64_t window_rows_ = 0;
  bool ordered_ = true;
  /// One node pool for both sides; reclaimed wholesale with the state.
  ObjectPool<Node> pool_;
  Table left_;
  Table right_;
};

}  // namespace aqsios::exec

#endif  // AQSIOS_EXEC_WINDOW_JOIN_H_
