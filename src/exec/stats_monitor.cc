#include "exec/stats_monitor.h"

#include <algorithm>

#include "common/check.h"

namespace aqsios::exec {

StatsMonitor::StatsMonitor(const AdaptationConfig& config,
                           sched::UnitTable* units,
                           sched::Scheduler* scheduler)
    : config_(config), units_(units), scheduler_(scheduler) {
  AQSIOS_CHECK(units != nullptr);
  AQSIOS_CHECK(scheduler != nullptr);
  AQSIOS_CHECK_GT(config.period, 0.0);
  AQSIOS_CHECK_GT(config.ewma_alpha, 0.0);
  AQSIOS_CHECK_LE(config.ewma_alpha, 1.0);
  windows_.resize(units->size());
  estimated_selectivity_.reserve(units->size());
  estimated_cost_.reserve(units->size());
  for (const sched::Unit& unit : *units) {
    // Seed the estimates with the assumed statistics.
    estimated_selectivity_.push_back(unit.stats.selectivity);
    estimated_cost_.push_back(unit.stats.expected_cost);
  }
  next_tick_ = config.period;
}

void StatsMonitor::OnExecutionStart(int unit) {
  current_unit_ = unit;
  ++windows_[static_cast<size_t>(unit)].executions;
}

void StatsMonitor::AddBusyTime(SimTime cost) {
  if (current_unit_ < 0) return;
  windows_[static_cast<size_t>(current_unit_)].busy += cost;
}

void StatsMonitor::AddEmission() {
  if (current_unit_ < 0) return;
  ++windows_[static_cast<size_t>(current_unit_)].emissions;
}

bool StatsMonitor::MaybeAdapt(SimTime now) {
  if (now < next_tick_) return false;
  // Catch up in one tick even if several periods elapsed while idle.
  while (next_tick_ <= now) next_tick_ += config_.period;
  ++ticks_;
  last_refreshed_units_ = 0;

  const double alpha = config_.ewma_alpha;
  for (size_t u = 0; u < units_->size(); ++u) {
    Window& window = windows_[u];
    if (window.executions >= config_.min_executions) {
      ++last_refreshed_units_;
      const double observed_selectivity =
          static_cast<double>(window.emissions) /
          static_cast<double>(window.executions);
      const SimTime observed_cost =
          window.busy / static_cast<double>(window.executions);
      estimated_selectivity_[u] = alpha * observed_selectivity +
                                  (1.0 - alpha) * estimated_selectivity_[u];
      estimated_cost_[u] =
          alpha * observed_cost + (1.0 - alpha) * estimated_cost_[u];

      sched::UnitStats& stats = (*units_)[u].stats;
      // Selectivity may legitimately be 0 in a window; floor it so rate
      // priorities stay finite (a unit observed to emit nothing keeps a
      // tiny positive rate rather than a degenerate one).
      stats.selectivity = std::max(estimated_selectivity_[u], 1e-6);
      stats.expected_cost = std::max(estimated_cost_[u], 1e-9);
      sched::RederiveUnitStats(&stats);
    }
    window = Window{};
  }
  scheduler_->OnStatsUpdated();
  return true;
}

}  // namespace aqsios::exec
