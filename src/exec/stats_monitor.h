// Run-time statistics monitoring and priority adaptation.
//
// The paper's policies assume known operator costs and selectivities; §10
// notes the policies "can work in a dynamic environment with support for
// monitoring the queries' costs and selectivities, and updating the
// priorities whenever it is necessary". This monitor is that support: it
// observes, per schedulable unit, the executions, emissions, and busy time,
// periodically folds the observed selectivity S = emissions/executions and
// cost C̄ = busy/executions into EWMA estimates, rewrites the unit's stats,
// and notifies the scheduler (Scheduler::OnStatsUpdated) so precomputed
// orders are rebuilt.
//
// Defined for query-level scheduling, where one unit execution corresponds
// to one leaf-to-root segment run and root emissions per execution estimate
// exactly the segment's global selectivity.

#ifndef AQSIOS_EXEC_STATS_MONITOR_H_
#define AQSIOS_EXEC_STATS_MONITOR_H_

#include <cstdint>
#include <vector>

#include "common/sim_time.h"
#include "sched/scheduler.h"
#include "sched/unit.h"

namespace aqsios::exec {

struct AdaptationConfig {
  bool enabled = false;
  /// Virtual time between priority refreshes (seconds).
  SimTime period = 0.5;
  /// Weight of the newest observation window in the EWMA estimates.
  double ewma_alpha = 0.5;
  /// Units with fewer executions in the window keep their prior estimate.
  int64_t min_executions = 16;
};

class StatsMonitor {
 public:
  /// `units` and `scheduler` must outlive the monitor.
  StatsMonitor(const AdaptationConfig& config, sched::UnitTable* units,
               sched::Scheduler* scheduler);

  StatsMonitor(const StatsMonitor&) = delete;
  StatsMonitor& operator=(const StatsMonitor&) = delete;

  /// Marks `unit` as the execution in progress and counts it.
  void OnExecutionStart(int unit);

  /// Attributes processing time to the execution in progress.
  void AddBusyTime(SimTime cost);

  /// Attributes one root emission to the execution in progress.
  void AddEmission();

  /// Refreshes estimates and notifies the scheduler if a period elapsed.
  /// Returns true when an adaptation tick fired.
  bool MaybeAdapt(SimTime now);

  int64_t ticks() const { return ticks_; }

  /// Units whose estimates were actually refreshed by the most recent tick
  /// (units below min_executions keep their prior estimate and don't count).
  int64_t last_refreshed_units() const { return last_refreshed_units_; }

  /// Current selectivity estimate of a unit (exposed for tests).
  double EstimatedSelectivity(int unit) const {
    return estimated_selectivity_[static_cast<size_t>(unit)];
  }
  SimTime EstimatedCost(int unit) const {
    return estimated_cost_[static_cast<size_t>(unit)];
  }

 private:
  struct Window {
    int64_t executions = 0;
    int64_t emissions = 0;
    SimTime busy = 0.0;
  };

  AdaptationConfig config_;
  sched::UnitTable* units_;
  sched::Scheduler* scheduler_;
  std::vector<Window> windows_;
  std::vector<double> estimated_selectivity_;
  std::vector<SimTime> estimated_cost_;
  int current_unit_ = -1;
  SimTime next_tick_ = 0.0;
  int64_t ticks_ = 0;
  int64_t last_refreshed_units_ = 0;
};

}  // namespace aqsios::exec

#endif  // AQSIOS_EXEC_STATS_MONITOR_H_
