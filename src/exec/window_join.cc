#include "exec/window_join.h"

#include "common/check.h"

namespace aqsios::exec {

SymmetricHashJoinState::SymmetricHashJoinState(SimTime window_seconds,
                                               bool ordered)
    : kind_(WindowKind::kTime), window_(window_seconds), ordered_(ordered) {
  AQSIOS_CHECK_GT(window_seconds, 0.0);
}

SymmetricHashJoinState SymmetricHashJoinState::RowWindow(
    int64_t window_rows) {
  AQSIOS_CHECK_GT(window_rows, 0);
  SymmetricHashJoinState state;
  state.kind_ = WindowKind::kRow;
  state.window_rows_ = window_rows;
  return state;
}

void SymmetricHashJoinState::PushBack(Bucket& bucket, const Entry& entry) {
  Node* node = pool_.New(Node{entry, nullptr});
  if (bucket.tail == nullptr) {
    bucket.head = node;
  } else {
    bucket.tail->next = node;
  }
  bucket.tail = node;
}

void SymmetricHashJoinState::PopFront(Table& t, Bucket& bucket) {
  Node* node = bucket.head;
  AQSIOS_DCHECK(node != nullptr);
  bucket.head = node->next;
  if (bucket.head == nullptr) bucket.tail = nullptr;
  pool_.Release(node);
  --t.size;
}

void SymmetricHashJoinState::EvictExpired(Table& t, Bucket& bucket,
                                          SimTime horizon) {
  while (bucket.head != nullptr && bucket.head->entry.timestamp < horizon) {
    PopFront(t, bucket);
  }
}

void SymmetricHashJoinState::Insert(query::Side side, int32_t key,
                                    const Entry& entry) {
  Table& t = table(side);
  Bucket& bucket = t.buckets[key];
  if (kind_ == WindowKind::kRow) {
    PushBack(bucket, entry);
    ++t.size;
    t.insertion_order.push_back(key);
    // Evict beyond the last window_rows_ inserts, oldest first (bucket
    // heads are per-key oldest because inserts append).
    while (t.size > window_rows_) {
      const int32_t oldest_key = t.insertion_order.front();
      t.insertion_order.pop_front();
      Bucket& oldest_bucket = t.buckets[oldest_key];
      AQSIOS_DCHECK(!oldest_bucket.empty());
      PopFront(t, oldest_bucket);
    }
    return;
  }
  AQSIOS_DCHECK(!ordered_ || bucket.empty() ||
                bucket.tail->entry.timestamp <= entry.timestamp)
      << "per-side insert timestamps must be non-decreasing in ordered mode";
  // No eviction here: probes into this table come from the *other* stream,
  // whose tuples may still be queued with timestamps older than this
  // insert's. Eviction by the inserter's timestamp could drop entries a
  // delayed probe is still entitled to match; probe-time eviction (whose
  // timestamps are non-decreasing per table) is the safe point.
  PushBack(bucket, entry);
  ++t.size;
}

void SymmetricHashJoinState::Probe(query::Side side, int32_t key,
                                   SimTime timestamp,
                                   std::vector<Entry>* candidates) {
  const query::Side other =
      side == query::Side::kLeft ? query::Side::kRight : query::Side::kLeft;
  Table& t = table(other);
  auto it = t.buckets.find(key);
  if (it == t.buckets.end()) return;
  Bucket& bucket = it->second;
  if (kind_ == WindowKind::kRow) {
    // Every resident of the last-N window is a candidate.
    for (const Node* node = bucket.head; node != nullptr; node = node->next) {
      candidates->push_back(node->entry);
    }
    return;
  }
  if (!ordered_) {
    // Unordered mode (composite-fed stages): no eviction is safe; scan the
    // whole bucket for window matches.
    for (const Node* node = bucket.head; node != nullptr; node = node->next) {
      if (node->entry.timestamp >= timestamp - window_ &&
          node->entry.timestamp <= timestamp + window_) {
        candidates->push_back(node->entry);
      }
    }
    return;
  }
  EvictExpired(t, bucket, timestamp - window_);
  for (const Node* node = bucket.head; node != nullptr; node = node->next) {
    // Entries still newer than probe + V are kept for future probes but are
    // not candidates of this one.
    if (node->entry.timestamp > timestamp + window_) break;
    candidates->push_back(node->entry);
  }
}

int64_t SymmetricHashJoinState::size(query::Side side) const {
  return table(side).size;
}

}  // namespace aqsios::exec
