// The discrete-event DSMS execution engine.
//
// The engine simulates a single-CPU stream processor on a virtual clock:
// arrivals from the arrival table are fanned out to the leaf queues of the
// schedulable units; at each scheduling point the attached Scheduler chooses
// a unit (or a cluster of units, §6.2.3) and the engine runs the pipelined
// operator segment on the head tuple, advancing the clock by the operator
// costs actually incurred. Tuples surviving to a query root are reported to
// the QosCollector with their response time and slowdown.
//
// Scheduling overhead can be charged to the virtual clock (Figures 13–14):
// each priority computation/comparison reported by the scheduler costs
// `overhead_op_cost` seconds (the paper uses the cheapest operator cost).

#ifndef AQSIOS_EXEC_ENGINE_H_
#define AQSIOS_EXEC_ENGINE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/sim_time.h"
#include "exec/stats_monitor.h"
#include "exec/unit_builder.h"
#include "exec/window_join.h"
#include "metrics/qos.h"
#include "obs/attribution.h"
#include "obs/histogram.h"
#include "obs/telemetry.h"
#include "obs/tracer.h"
#include "query/plan.h"
#include "sched/calibration.h"
#include "sched/scheduler.h"
#include "stream/drift.h"
#include "stream/tuple.h"

namespace aqsios::exec {

/// QoS-aware load shedding at the sources (overload survival,
/// docs/overload.md). When the total queued-tuple population reaches
/// `queue_cap`, arrivals destined for the *sheddable* leaf units are dropped
/// at admission instead of enqueued. The sheddable set is the bottom
/// `shed_fraction` of the leaf units ranked by the attached policy's
/// marginal-slowdown line slope (Scheduler::ShedPriority, ties by unit id),
/// computed once before the run — so shedding is deterministic in virtual
/// time, policy-consistent (the policy loses the tuples it valued least),
/// and schedule-invariant across repeats. Disabled (the default) leaves the
/// engine bit-identical to one built before shedding existed.
struct ShedConfig {
  bool enabled = false;
  /// Total queued tuples at which sheddable sources start dropping.
  int64_t queue_cap = 1 << 16;
  /// Fraction of leaf units (lowest shed priority first) that may shed;
  /// 1.0 turns queue_cap into a hard cap on queued memory.
  double shed_fraction = 1.0;
};

struct EngineConfig {
  SchedulingLevel level = SchedulingLevel::kQueryLevel;
  sched::SharingStrategy sharing_strategy = sched::SharingStrategy::kPdt;
  sched::SharingObjective sharing_objective = sched::SharingObjective::kHnr;
  /// Simulated cost (seconds) of one scheduling computation/comparison;
  /// 0 disables overhead charging.
  SimTime overhead_op_cost = 0.0;

  /// Run-time statistics monitoring (query-level scheduling only).
  AdaptationConfig adaptation;

  /// Optional event tracer. Observation-only: attaching a tracer never
  /// changes the simulation (every site is a branch on this pointer — the
  /// null-sink fast path pinned by tests/obs_tracer_test.cc).
  obs::EventTracer* tracer = nullptr;

  /// Optional live-telemetry snapshot cell (obs/telemetry.h). The engine
  /// publishes its hot counters into the cell at scheduling points so a
  /// TelemetrySampler thread can observe the run live. Same discipline as
  /// `tracer`: observation-only, one branch on a null pointer when disabled,
  /// never feeds the virtual clock (pinned by tests/obs_telemetry_test.cc).
  obs::SnapshotCell* telemetry = nullptr;

  /// Publish into the cell every 2^ceil(log2(N)) scheduling points (the
  /// engine rounds up to a power of two and tests a mask). 16 keeps the
  /// publish cost well under the sampler's wall-clock resolution.
  int telemetry_publish_every = 16;

  /// Per-tuple stage-attribution sample period N: every N-th arrival id's
  /// emissions get their response time decomposed into queue wait /
  /// scheduling overhead / processing (see obs/attribution.h). 0 disables.
  int64_t attribution_sample_every = 0;

  /// Batched (train) execution: one scheduling decision drains up to
  /// `batch_size` tuples from the picked unit and runs them through the
  /// segment as a train, so priority re-keys and the §9.2 overhead charge
  /// are amortized over the whole batch (Aurora's train scheduling, the
  /// regime Figure 14 analyzes). 1 = the per-tuple engine (bit-identical
  /// results, untouched code path); 0 = unbounded (drain the whole queue).
  int batch_size = 1;

  /// Optional time-quantum budget: when > 0, a train is additionally capped
  /// at floor(batch_quantum / expected segment cost) tuples (minimum 1).
  /// Any positive value engages the batched dispatcher even at
  /// batch_size = 1, which is how the equivalence tests drive the train
  /// path with per-tuple semantics.
  SimTime batch_quantum = 0.0;

  /// Columnar (SoA) kernel execution of batched chain trains: the train's
  /// arrival attributes / ids / timestamps are gathered once into
  /// arena-backed column vectors, and each fused run of stateless chain
  /// operators (unit_builder's FuseChainOps) is evaluated as one
  /// branch-free pass over the columns with selection-vector survivor
  /// compaction (docs/performance.md). Observable results are bit-identical
  /// to the scalar selection-vector pass — clock, counters, QoS, frozen
  /// filter draws (pinned by tests/exec_kernel_test.cc) — so the flag only
  /// selects an execution strategy; off measures the scalar engine floor.
  /// Engages only with the batched dispatcher; traced runs always take the
  /// scalar pass (they need per-invocation events).
  bool use_columnar_kernels = true;

  /// Source-side load shedding (see ShedConfig above). Off by default.
  ShedConfig shed;

  /// Online cost/selectivity calibration (sched/calibration.h,
  /// docs/calibration.md). Query-level scheduling only; mutually exclusive
  /// with `adaptation` (both rewrite UnitStats). Off by default — and off is
  /// byte-identical: the engine then never constructs the calibrator and
  /// every hot-path site is one branch on a null pointer.
  sched::CalibrationConfig calibration;

  /// Mid-run statistics drift of a query subset (stream/drift.h) — the
  /// scenario calibration exists for. Requires the per-tuple dispatcher
  /// (trains mix arrival times inside one clock charge), no sharing groups,
  /// and single-stream queries only (checked). Off by default; off is
  /// byte-identical (the scale factors are exactly 1.0 and never computed).
  stream::DriftConfig drift;
};

/// Execution counters of one run.
struct RunCounters {
  int64_t scheduling_points = 0;
  int64_t unit_executions = 0;
  int64_t operator_invocations = 0;
  int64_t tuples_emitted = 0;
  int64_t tuples_filtered = 0;
  int64_t composites_generated = 0;
  int64_t overhead_operations = 0;
  int64_t adaptation_ticks = 0;

  /// Decision shape: Σ candidates examined and Σ priority computations over
  /// all scheduling points (the per-policy `decisions` block in reports).
  int64_t decision_candidates = 0;
  int64_t priority_computations = 0;

  /// Batched execution only (all zero on the per-tuple path, and the report
  /// writer omits them then so default-path JSON is byte-identical):
  /// dispatches of the train path, tuples they drained, and the largest
  /// single train.
  int64_t train_dispatches = 0;
  int64_t train_tuples = 0;
  int64_t max_train_tuples = 0;

  /// Load shedding only (both stay zero — and the report writer omits the
  /// shed block — unless ShedConfig::enabled): leaf-queue admission
  /// opportunities offered to the engine, and how many of them were shed.
  /// Shed tuples never reach the QoS collector, so every slowdown statistic
  /// is over delivered tuples only; the shed ratio is reported alongside so
  /// the loss is first-class instead of silently vanishing.
  int64_t tuples_offered = 0;
  int64_t tuples_shed = 0;

  /// Online calibration only (all zero — and the report writer omits the
  /// calibration block — unless CalibrationConfig::enabled): epochs fired,
  /// units whose stats were rewritten (summed over epochs), and how many of
  /// those rewrites re-keyed a unit with pending work. The drift gauges are
  /// the final-epoch mean |estimate/static - 1| over all units.
  int64_t calibration_epochs = 0;
  int64_t calibration_updates = 0;
  int64_t calibration_rekeys = 0;
  double calibration_cost_drift = 0.0;
  double calibration_selectivity_drift = 0.0;

  SimTime busy_time = 0.0;      // operator processing time
  SimTime overhead_time = 0.0;  // charged scheduling overhead
  SimTime end_time = 0.0;       // virtual time when all work drained

  /// Run-time memory (queued tuples): peak and time-weighted average. The
  /// quantity Chain ([5], Table 3) minimizes.
  int64_t peak_queued_tuples = 0;
  double avg_queued_tuples = 0.0;

  /// Distribution of total queued tuples observed at each scheduling point.
  obs::HistogramSummary queue_length;
  /// Distribution of busy time per unit execution (seconds).
  obs::HistogramSummary exec_busy;

  /// Full histograms behind the two summaries above. Kept so per-shard
  /// counters merge exactly: quantiles are pure functions of the merged
  /// buckets, so Merge can rebuild the summaries from combined counts
  /// instead of approximating from pre-digested quantiles.
  obs::Histogram queue_length_hist{{.min_value = 1.0}};
  obs::Histogram exec_busy_hist;

  /// Sampled response-time decomposition (empty when sampling is disabled).
  obs::StageAttribution attribution;

  /// Folds another (disjoint) run's counters into this one, exactly: counts
  /// and times sum; end_time and max_train_tuples take the max (shards run
  /// concurrently on the virtual clock); peak_queued_tuples sums (concurrent
  /// shards each hold their peak's memory); avg_queued_tuples re-weights by
  /// each run's queued-tuple-seconds over the merged end_time; and the
  /// histogram summaries are rebuilt from the merged full histograms.
  void Merge(const RunCounters& other);

  /// busy_time / end_time: fraction of the run the CPU spent on operators.
  double MeasuredUtilization() const {
    return end_time > 0.0 ? busy_time / end_time : 0.0;
  }

  /// tuples_shed / tuples_offered; 0 when shedding was disabled.
  double ShedRatio() const {
    return tuples_offered > 0 ? static_cast<double>(tuples_shed) /
                                    static_cast<double>(tuples_offered)
                              : 0.0;
  }

  std::string ToString() const;
};

class Engine {
 public:
  /// All pointers must outlive the engine. `collector` may be null when only
  /// counters are of interest.
  Engine(const query::GlobalPlan* plan, const stream::ArrivalTable* arrivals,
         const EngineConfig& config, sched::Scheduler* scheduler,
         metrics::QosCollector* collector);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs the simulation until all arrivals are processed and every queue is
  /// drained. Call at most once. Exactly equivalent to Begin();
  /// RunUntil(+inf); Finish() — which is how the elastic sharded runner
  /// drives the engine in virtual-time epochs instead.
  RunCounters Run();

  /// Epoch-driven protocol (core/sharded_dsms.cc elastic runner). Begin
  /// once, RunUntil per epoch barrier, Finish once after every engine
  /// drained. With barrier = +inf the three calls replay Run() byte for
  /// byte.
  void Begin();
  /// Advances the simulation until the clock reaches `barrier` or the engine
  /// pauses idle (no ready work, next arrival beyond the barrier). Arrival
  /// delivery is clamped to min(now, barrier) so at every return the arrival
  /// cursor sits exactly at the first arrival after the barrier — the
  /// invariant group migration relies on. Returns true when fully drained
  /// (cursor exhausted, no pending work); a drained engine is merely paused
  /// and is revived by InjectGroup / InjectStolenTrain.
  bool RunUntil(SimTime barrier);
  /// Settles final accounting and returns the counters. Call once.
  RunCounters Finish();

  // --- Elastic shard mode (core/rebalance.h) ---
  /// Enters elastic mode before Begin: the engine holds the *full* plan and
  /// the global arrival table, but only delivers arrivals to the placement
  /// groups it owns (`owned_groups` bitmap over `num_groups` groups;
  /// `group_of_query` maps every query to its group). Incompatible with
  /// tracing, adaptation, and load shedding (checked).
  void ConfigureElastic(const std::vector<int>& group_of_query,
                        int num_groups, std::vector<uint8_t> owned_groups);

  /// Scheduler + queue state of one placement group in flight between
  /// engines.
  struct GroupState {
    /// (unit id, moved queue) for every non-empty member queue.
    std::vector<std::pair<int, sched::TupleQueue>> unit_queues;
    /// (query id, moved per-stage window-join state) for member queries.
    std::vector<std::pair<
        int, std::vector<std::unique_ptr<SymmetricHashJoinState>>>>
        join_states;
    int64_t queued = 0;
  };
  /// Quiesced handoff, called only at an epoch barrier: moves the group's
  /// queues and window-join state out, drops ownership, and resyncs the
  /// scheduler. The group's frozen randomness is keyed on global ids, so the
  /// target replays identical outcomes.
  GroupState ExtractGroup(int group);
  /// Target side of a migration: bumps the clock to the barrier (paused-idle
  /// targets sit below it), installs the state, takes ownership, resyncs.
  void InjectGroup(int group, GroupState state, SimTime barrier);

  /// Work stealing: pops up to `max_tuples` head entries of the fullest
  /// stateless (kQueryChain/kRemainder) queue for an idle thief. Ownership
  /// is unchanged — the thief only drains the handed-off train. Returns
  /// false when no stealable backlog exists.
  bool ExtractStolenTrain(int64_t max_tuples, int* unit_out,
                          std::vector<sched::QueueEntry>* entries);
  /// Thief side of a steal; the thief must be fully idle so the handed-off
  /// prefix stays FIFO-ordered in its (empty) queue.
  void InjectStolenTrain(int unit_id,
                         const std::vector<sched::QueueEntry>& entries,
                         SimTime barrier);

  /// Elastic-mode observers for the rebalance controller.
  SimTime virtual_now() const { return now_; }
  SimTime busy_time() const { return counters_.busy_time; }
  int64_t queued_tuples() const { return queued_tuples_; }
  /// Cumulative busy seconds attributed to each placement group (the
  /// executed unit's group, including stolen work executed here).
  const std::vector<double>& group_busy() const { return group_busy_; }
  /// Arrivals delivered to at least one owned leaf queue (the elastic
  /// counterpart of the router's per-shard routed count).
  int64_t elastic_arrivals_routed() const { return elastic_arrivals_routed_; }

  const sched::UnitTable& units() const { return built_.units; }

 private:
  void DeliverArrivalsUpTo(SimTime time);
  /// `arrival` is the *index* into the engine's arrival table (queue entries
  /// carry indexes; Arrival::id stays global — see sched/unit.h).
  void Enqueue(int unit, stream::ArrivalId arrival, SimTime arrival_time);
  void ExecuteUnit(int unit_id);

  /// Batched path: number of head entries the next train on `unit` drains
  /// (>= 1; capped by batch_size, the batch_quantum budget, and the queue).
  size_t TrainLength(const sched::Unit& unit) const;
  /// Batched path counterpart of ExecuteUnit: drains TrainLength entries in
  /// one dispatch and runs them as a train. Per-tuple semantics (timestamps,
  /// QoS, filter outcomes) are preserved; only the dispatch is amortized.
  void ExecuteUnitTrain(int unit_id);
  /// Runs the train through a chain segment (kQueryChain / kRemainder) with
  /// a selection-vector pass: operator-at-a-time over the surviving run,
  /// compacting survivors in place. Safe because filter outcomes are frozen
  /// per (arrival, query, ordinal) — evaluation order cannot change them.
  void ExecuteChainTrain(const sched::Unit& unit, size_t count);

  /// Columnar counterpart of ExecuteChainTrain: runs the gathered column
  /// train through the unit's fused kernels (UnitKernelPlan below). The
  /// branch-free predicate kernels compute each lane's survived depth; the
  /// depths then drive an exact replay of the scalar pass's
  /// operator-at-a-time clock/counter sequence (floating-point accumulation
  /// is order-sensitive, so the replay repeats the very same additions —
  /// never a multiply) before survivors are compacted and the root operator
  /// emits in selection order.
  void ExecuteChainTrainColumnar(const sched::Unit& unit, size_t count);
  /// Grows the column scratch to hold `n` tuples (power-of-two growth;
  /// cache-line-aligned columns carved from column_arena_).
  void EnsureColumnCapacity(size_t n);

  /// Charges processing time to the clock.
  void Charge(SimTime cost);

  /// Charges `invocations` executions of one operator at `cost` each in a
  /// single bulk step (`now_ += cost * invocations`). Train semantics for
  /// non-root operators: nothing observes the clock between same-operator
  /// charges within a train, so the batched paths advance it once per
  /// operator instead of per tuple — this is what lets the columnar kernels
  /// replay a fused run in O(ops) instead of O(invocations). At
  /// invocations == 1 the arithmetic is bit-identical to Charge(cost)
  /// (cost * 1.0 is exact), which keeps forced trains-of-one byte-equal to
  /// the per-tuple engine. Both batched paths (scalar train and columnar)
  /// use this identically, so the flag stays bit-inert.
  void ChargeBulk(SimTime cost, int64_t invocations);

  /// Whether `op` (the op_ordinal-th operator of query q) passes `arrival`.
  /// Deterministic in (arrival, query, ordinal) so all policies see the same
  /// filter outcomes. Takes the compiled query the caller already holds to
  /// keep the per-operator hot path free of plan lookups.
  bool Passes(const query::OperatorSpec& op, const stream::Arrival& arrival,
              const query::CompiledQuery& q, int op_ordinal) const;

  /// Whether the shared leaf operator of `group` passes `arrival` (one
  /// outcome for the whole group).
  bool SharedOpPasses(const query::OperatorSpec& op,
                      const stream::Arrival& arrival, int group) const;

  /// Runs chain operators [from, end) of single-stream query q on `arrival`,
  /// charging costs; returns true if the tuple survives.
  bool RunChainOps(const query::CompiledQuery& q,
                   const stream::Arrival& arrival, int from);

  void EmitSingle(const query::CompiledQuery& q, stream::ArrivalId arrival,
                  SimTime arrival_time);

  /// Counts a filter drop (and traces it when a tracer is attached).
  void DropTuple(query::QueryId q, int64_t arrival);

  /// Records the decomposed response time of an emission when the arrival id
  /// falls in the attribution sample. `dependency_delay` < 0 means "not a
  /// composite" (no dependency component recorded).
  void AttributeEmission(int64_t arrival, SimTime arrival_time,
                         SimTime dependency_delay);

  void ExecuteQueryChain(const sched::Unit& unit,
                         const sched::QueueEntry& entry);
  void ExecuteSharedGroup(const sched::Unit& unit,
                          const sched::QueueEntry& entry);
  void ExecuteRemainder(const sched::Unit& unit,
                        const sched::QueueEntry& entry);
  void ExecuteOperator(const sched::Unit& unit,
                       const sched::QueueEntry& entry);
  /// Runs join input `input` (0 = left stream, 1 = right stream of the base
  /// join, >= 2 = extra-stage streams) on the head tuple.
  void ExecuteJoinInput(const sched::Unit& unit,
                        const sched::QueueEntry& entry, int input);

  /// Whether composite `identity` passes the op (frozen, order-independent).
  bool PassesComposite(const query::OperatorSpec& op, uint64_t identity,
                       query::QueryId q, int op_ordinal) const;

  /// Joins `entry` (freshly inserted on `side` of `stage`) against the
  /// opposite table and pushes every match up the pipeline.
  void ProbeAndPropagate(const query::CompiledQuery& q, int stage,
                         query::Side side,
                         const SymmetricHashJoinState::Entry& entry,
                         int32_t join_key);

  /// Moves a composite produced by stage `stage - 1` into stage `stage`, or
  /// through the common segment to emission when past the last stage.
  void PropagateComposite(const query::CompiledQuery& q, int stage,
                          const SymmetricHashJoinState::Entry& composite,
                          int32_t join_key);

  void EmitComposite(const query::CompiledQuery& q,
                     const SymmetricHashJoinState::Entry& composite);

  SymmetricHashJoinState& JoinState(query::QueryId q, int stage) {
    return *join_state_[static_cast<size_t>(q)][static_cast<size_t>(stage)];
  }

  const query::GlobalPlan* plan_;
  const stream::ArrivalTable* arrivals_;
  EngineConfig config_;
  sched::Scheduler* scheduler_;
  metrics::QosCollector* collector_;

  BuiltUnits built_;
  /// Present when config_.adaptation.enabled.
  std::unique_ptr<StatsMonitor> stats_monitor_;
  /// Present when config_.calibration.enabled.
  std::unique_ptr<sched::CostCalibrator> calibrator_;
  /// Leaf unit ids per stream id.
  std::vector<std::vector<int>> leaf_units_of_stream_;
  /// Window-join state per query and stage (empty for single-stream
  /// queries). Stage 0 runs in ordered mode; composite-fed stages do not.
  std::vector<std::vector<std::unique_ptr<SymmetricHashJoinState>>>
      join_state_;

  /// Accrues the queued-tuples time integral up to the current clock.
  void AccrueQueueOccupancy();

  /// --- Elastic shard mode state (all inert when elastic_ is false) ---
  bool elastic_ = false;
  /// Placement group of each query / unit (ConfigureElastic).
  std::vector<int> group_of_query_;
  std::vector<int> group_of_unit_;
  /// Ownership bitmap over placement groups; gates arrival delivery.
  std::vector<uint8_t> owned_groups_;
  /// Cumulative busy seconds per placement group (EWMA input).
  std::vector<double> group_busy_;
  int64_t elastic_arrivals_routed_ = 0;

  SimTime now_ = 0.0;
  int64_t next_arrival_ = 0;
  int64_t queued_tuples_ = 0;
  SimTime last_occupancy_time_ = 0.0;
  double queued_tuple_seconds_ = 0.0;
  RunCounters counters_;
  bool ran_ = false;
  /// Scratch buffer reused across scheduling points.
  std::vector<int> picked_;
  /// Batched dispatcher engaged (batch_size != 1 or batch_quantum > 0);
  /// false keeps the per-tuple path bit-identical to the pre-batching
  /// engine.
  bool batching_ = false;
  /// Load shedding engaged (config_.shed.enabled); false keeps
  /// DeliverArrivalsUpTo bit-identical to the pre-shedding engine.
  bool shedding_ = false;
  /// Statistics drift engaged (config_.drift.enabled). When false the scale
  /// factors below stay exactly 1.0 and every multiply is bit-inert.
  bool drifting_ = false;
  /// Drift factors of the tuple being executed, set per dispatch from the
  /// (query, arrival time) of the head entry — never from now_, so charges
  /// stay schedule- and policy-independent.
  double charge_scale_ = 1.0;
  double sel_scale_ = 1.0;
  /// Leaf units in the sheddable set (bottom shed_fraction of the leaves by
  /// Scheduler::ShedPriority); indexed by unit id, empty when !shedding_.
  std::vector<uint8_t> sheddable_;
  /// Train scratch, reused across dispatches: the entries drained by the
  /// current train, and the selection vector of indexes into it that still
  /// survive the chain pass.
  std::vector<sched::QueueEntry> train_;
  std::vector<uint32_t> train_sel_;

  /// --- Columnar train path (EngineConfig::use_columnar_kernels) ---
  /// Build-time constants of one chain operator, denormalized so the kernel
  /// lane loops read plain scalars instead of chasing the plan.
  struct KernelOp {
    SimTime cost = 0.0;
    /// EffectiveActualSelectivity() of the operator.
    double selectivity = 1.0;
    /// Correlated-attribute predicate bound: the exact IEEE product
    /// selectivity * 100 the scalar Passes computes, or +infinity for a
    /// pass-everything operator (selectivity >= 1) so the kernel comparison
    /// stays branch-free in that case too.
    double threshold = 0.0;
    /// Correlated plans: min(threshold) over the ops of this op's fused run
    /// up to and including this one. A lane survives a correlated run's
    /// prefix [0..x] iff attr <= run_prefix_min of op x (the same IEEE
    /// comparisons the scalar chain performs, just collapsed), which is what
    /// lets the reach kernel count survivors per operator without tracking
    /// per-lane depth.
    double run_prefix_min = 0.0;
    /// Absolute chain position (the frozen-draw ordinal).
    int ordinal = 0;
  };
  /// Columnar execution plan of one unit; `enabled` only for chain units
  /// whose fusion tiles the whole segment (FuseChainOps contiguous).
  struct UnitKernelPlan {
    bool enabled = false;
    /// Selectivity realized as an attribute threshold (vs a frozen draw).
    bool correlated = false;
    int from = 0;   // first chain position of the segment
    int n_ops = 0;  // chain length
    /// Segment operators, indexed by (chain position - from).
    std::vector<KernelOp> ops;
    std::vector<FusedKernel> runs;
  };

  /// Correlated-attribute reach kernel: fills kernel_reach_[0..k] with the
  /// number of lanes charged for each operator of the run (reach[x] = lanes
  /// surviving ops [0..x-1]; reach[0] = n). Survival of a run prefix is a
  /// single comparison against that prefix's min threshold
  /// (KernelOp::run_prefix_min), so each entry is a branch-free vectorizable
  /// count over the attribute column — no per-lane depth — and consecutive
  /// ops whose prefix min did not change reuse the previous count outright.
  /// `sel` maps lanes to column rows; nullptr = identity (the dense
  /// first-run fast path, gather-free for the auto-vectorizer).
  void CountReachAttribute(const uint32_t* sel, size_t n,
                           const KernelOp* ops, int k);
  /// Branch-free frozen-Bernoulli depth kernel: fills col_depth_[0..n) with
  /// each lane's survived depth over a run of `k` operators (consecutive
  /// passes from the run's start; alive &= pass, depth += alive — no
  /// per-lane branch). Draw outcomes are per (op, tuple), so unlike the
  /// correlated kernel a per-lane pass is irreducible.
  void DepthKernelBernoulli(const uint32_t* sel, size_t n,
                            const KernelOp* ops, int k, uint64_t query_key);

  /// Indexed by unit id; sized (and consulted) only when columnar_.
  std::vector<UnitKernelPlan> unit_kernels_;
  /// Columnar path engaged: use_columnar_kernels && batched dispatcher &&
  /// no tracer (the tracer wants per-invocation events in clock order).
  bool columnar_ = false;
  /// Arena backing the column scratch; reset and re-carved on growth.
  Arena column_arena_;
  /// SoA columns of the current train, gathered from the drained queue
  /// entries: synthetic attribute, global arrival id (frozen-draw key and
  /// trace/QoS identity), arrival time. col_depth_ is the kernels' survived
  /// depth output; col_sel_/col_sel_next_ the selection vectors survivor
  /// compaction ping-pongs between. All col_capacity_ elements long.
  double* col_attr_ = nullptr;
  stream::ArrivalId* col_id_ = nullptr;
  SimTime* col_arrival_time_ = nullptr;
  uint32_t* col_depth_ = nullptr;
  uint32_t* col_sel_ = nullptr;
  uint32_t* col_sel_next_ = nullptr;
  size_t col_capacity_ = 0;
  /// Clock-replay scratch: reach[x] = lanes whose depth reaches local op x.
  std::vector<int64_t> kernel_reach_;
  /// Join-probe candidate buffers, one per recursion depth of
  /// ProbeAndPropagate (a probe at stage s iterates its buffer while deeper
  /// stages fill theirs). Sized once in the constructor from the deepest
  /// join pipeline in the plan; reused across all probes so the hot path
  /// allocates nothing.
  std::vector<std::vector<SymmetricHashJoinState::Entry>> probe_scratch_;
  int probe_depth_ = 0;

  /// Publishes the engine's hot counters into the telemetry cell. Wait-free
  /// (SnapshotCell::Publish); called at masked scheduling points and once
  /// with done=true when the run drains.
  void PublishTelemetry(bool done);

  /// Observability state — all observation-only (never feeds the clock).
  obs::EventTracer* tracer_ = nullptr;
  /// Live-telemetry cell (null = disabled; the hot-loop check is one branch
  /// on this pointer, same as tracer_).
  obs::SnapshotCell* telemetry_ = nullptr;
  /// Publish every (mask+1) scheduling points; power-of-two minus one.
  uint64_t telemetry_mask_ = 0;
  /// Slowdown accumulators feeding the cell (only maintained when a cell is
  /// attached — emission sites branch on telemetry_).
  double telemetry_slowdown_sum_ = 0.0;
  int64_t telemetry_slowdown_count_ = 0;
  double telemetry_max_slowdown_ = 0.0;
  /// Queue lengths are small integers: first bucket edge at 1 tuple.
  obs::Histogram queue_len_hist_{{.min_value = 1.0}};
  obs::Histogram exec_busy_hist_;
  obs::StageAttribution attribution_;
  /// Unit/query of the execution in progress (trace context for operator
  /// invocations and join probes); -1 outside ExecuteUnit.
  int32_t cur_unit_ = -1;
  int32_t cur_query_ = -1;
  /// Clock when the execution in progress began, and the scheduling overhead
  /// charged at its scheduling point (the attribution decomposition).
  SimTime exec_start_ = 0.0;
  SimTime exec_point_overhead_ = 0.0;
};

}  // namespace aqsios::exec

#endif  // AQSIOS_EXEC_ENGINE_H_
