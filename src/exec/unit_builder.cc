#include "exec/unit_builder.h"

#include <algorithm>

#include "common/check.h"
#include "sched/chain_policy.h"

namespace aqsios::exec {

const char* SchedulingLevelName(SchedulingLevel level) {
  switch (level) {
    case SchedulingLevel::kQueryLevel:
      return "query_level";
    case SchedulingLevel::kOperatorLevel:
      return "operator_level";
  }
  return "unknown";
}

namespace {

int AddUnit(BuiltUnits* built, sched::Unit unit) {
  unit.id = static_cast<int>(built->units.size());
  built->units.push_back(std::move(unit));
  return built->units.back().id;
}

/// Exact Chain progress-chart slope of query q's chain from position x.
double ChainSlopeAt(const query::CompiledQuery& q, int x) {
  std::vector<double> effective;
  effective.reserve(static_cast<size_t>(q.chain_length()));
  for (int i = 0; i < q.chain_length(); ++i) {
    effective.push_back(q.EffectiveChainSelectivity(i));
  }
  return sched::ChainEnvelopeSlope(q.spec().left_ops, effective, x);
}

void BuildOperatorLevelUnits(const query::GlobalPlan& plan,
                             BuiltUnits* built) {
  built->op_units.resize(static_cast<size_t>(plan.num_queries()));
  for (const query::CompiledQuery& q : plan.queries()) {
    AQSIOS_CHECK(!q.is_multi_stream())
        << "operator-level scheduling requires single-stream plans";
    AQSIOS_CHECK_EQ(plan.SharingGroupOf(q.id()), -1)
        << "operator-level scheduling requires plans without sharing";
    auto& per_op = built->op_units[static_cast<size_t>(q.id())];
    for (int x = 0; x < q.chain_length(); ++x) {
      sched::Unit unit;
      unit.kind = sched::UnitKind::kOperator;
      unit.query = q.id();
      unit.op_index = x;
      unit.input_stream = x == 0 ? q.spec().left_stream : -1;
      unit.stats = sched::StatsFromSegment(q.ChainSegmentStats(x));
      unit.stats.chain_slope = ChainSlopeAt(q, x);
      per_op.push_back(AddUnit(built, std::move(unit)));
    }
  }
}

void BuildGroupUnits(const query::GlobalPlan& plan,
                     const UnitBuilderOptions& options, BuiltUnits* built) {
  built->groups.resize(plan.sharing_groups().size());
  for (size_t g = 0; g < plan.sharing_groups().size(); ++g) {
    const query::SharingGroup& group = plan.sharing_groups()[g];
    // Describe every member's full segment (shared operator included).
    std::vector<sched::MemberSegment> members;
    members.reserve(group.members.size());
    for (query::QueryId member : group.members) {
      const query::CompiledQuery& q = plan.query(member);
      const query::SegmentStats leaf = q.LeafStats();
      sched::MemberSegment segment;
      segment.query = member;
      segment.selectivity = leaf.selectivity;
      segment.expected_cost = leaf.expected_cost;
      segment.ideal_time = leaf.ideal_time;
      members.push_back(segment);
    }
    const query::CompiledQuery& first = plan.query(group.members.front());
    const SimTime shared_cost = first.spec().left_ops.front().cost();
    const sched::GroupPriority priority = sched::ComputeGroupPriority(
        members, shared_cost, options.sharing_strategy,
        options.sharing_objective);

    sched::Unit unit;
    unit.kind = sched::UnitKind::kSharedGroup;
    unit.query = group.members.front();
    unit.group = static_cast<int>(g);
    unit.input_stream = first.spec().left_stream;
    unit.stats = priority.stats;
    AddUnit(built, std::move(unit));

    GroupRuntime& runtime = built->groups[g];
    runtime.executed = priority.executed_members;
    for (query::QueryId rest : priority.remainder_members) {
      const query::CompiledQuery& q = plan.query(rest);
      AQSIOS_CHECK_GT(q.chain_length(), 1)
          << "PDT remainder requires operators after the shared one";
      sched::Unit remainder;
      remainder.kind = sched::UnitKind::kRemainder;
      remainder.query = rest;
      remainder.op_index = 1;
      remainder.group = static_cast<int>(g);
      remainder.input_stream = -1;
      remainder.stats = sched::StatsFromSegment(q.ChainSegmentStats(1));
      remainder.stats.chain_slope = ChainSlopeAt(q, 1);
      runtime.remainder_queries.push_back(rest);
      runtime.remainder_units.push_back(AddUnit(built, std::move(remainder)));
    }
  }
}

void BuildQueryLevelUnits(const query::GlobalPlan& plan,
                          const UnitBuilderOptions& options,
                          BuiltUnits* built) {
  BuildGroupUnits(plan, options, built);
  for (const query::CompiledQuery& q : plan.queries()) {
    if (plan.SharingGroupOf(q.id()) >= 0) continue;
    if (q.is_multi_stream()) {
      // One schedulable unit per join stream input (the virtual segments
      // E_LL, E_RR and their recursive generalizations).
      for (int input = 0; input < q.num_join_inputs(); ++input) {
        sched::Unit unit;
        unit.kind = input == 0   ? sched::UnitKind::kJoinSideLeft
                    : input == 1 ? sched::UnitKind::kJoinSideRight
                                 : sched::UnitKind::kJoinInput;
        unit.query = q.id();
        unit.op_index = input;
        unit.input_stream = q.JoinInputStream(input);
        unit.stats = sched::StatsFromSegment(q.JoinInputStats(input));
        AddUnit(built, std::move(unit));
      }
      continue;
    }
    sched::Unit unit;
    unit.kind = sched::UnitKind::kQueryChain;
    unit.query = q.id();
    unit.input_stream = q.spec().left_stream;
    unit.stats = sched::StatsFromSegment(q.LeafStats());
    unit.stats.chain_slope = ChainSlopeAt(q, 0);
    AddUnit(built, std::move(unit));
  }
}

}  // namespace

ChainFusion FuseChainOps(const std::vector<query::OperatorSpec>& ops,
                         int from) {
  AQSIOS_CHECK_GE(from, 0);
  ChainFusion fusion;
  const int end = static_cast<int>(ops.size());
  int x = from;
  while (x < end) {
    if (ops[static_cast<size_t>(x)].kind ==
        query::OperatorKind::kWindowJoin) {
      fusion.contiguous = false;
      ++x;
      continue;
    }
    FusedKernel run;
    run.first_op = x;
    while (x < end && ops[static_cast<size_t>(x)].kind !=
                          query::OperatorKind::kWindowJoin) {
      ++x;
    }
    run.num_ops = x - run.first_op;
    fusion.runs.push_back(run);
  }
  return fusion;
}

BuiltUnits BuildUnits(const query::GlobalPlan& plan,
                      const UnitBuilderOptions& options) {
  BuiltUnits built;
  if (options.level == SchedulingLevel::kOperatorLevel) {
    BuildOperatorLevelUnits(plan, &built);
  } else {
    BuildQueryLevelUnits(plan, options, &built);
  }
  AQSIOS_CHECK(!built.units.empty()) << "plan produced no schedulable units";
  built.chain_fusion.resize(built.units.size());
  for (const sched::Unit& unit : built.units) {
    if (unit.kind != sched::UnitKind::kQueryChain &&
        unit.kind != sched::UnitKind::kRemainder) {
      continue;
    }
    const query::CompiledQuery& q = plan.query(unit.query);
    const int from =
        unit.kind == sched::UnitKind::kRemainder ? unit.op_index : 0;
    built.chain_fusion[static_cast<size_t>(unit.id)] =
        FuseChainOps(q.spec().left_ops, from);
  }
  return built;
}

}  // namespace aqsios::exec
