// Translates a GlobalPlan into the engine's schedulable unit table.
//
// Query-level scheduling (non-preemptive, §6): one unit per standalone
// single-stream query, one per sharing group (plus remainder units for
// PDT-excluded segments), and two units (E_LL, E_RR) per two-stream query.
//
// Operator-level scheduling (preemptive, §6): one unit per operator of each
// single-stream chain; the unit's priority derives from the operator segment
// starting at that operator. (Operator-level mode is defined for plain
// single-stream plans; sharing and window joins use query-level units.)

#ifndef AQSIOS_EXEC_UNIT_BUILDER_H_
#define AQSIOS_EXEC_UNIT_BUILDER_H_

#include <vector>

#include "query/plan.h"
#include "sched/sharing.h"
#include "sched/unit.h"

namespace aqsios::exec {

enum class SchedulingLevel { kQueryLevel, kOperatorLevel };

const char* SchedulingLevelName(SchedulingLevel level);

/// Runtime info for one sharing group.
struct GroupRuntime {
  /// Member queries whose segments run (in priority order) when the shared
  /// leaf operator is scheduled.
  std::vector<query::QueryId> executed;
  /// Remainder unit id for each PDT-excluded member, parallel to
  /// `remainder_queries`.
  std::vector<query::QueryId> remainder_queries;
  std::vector<int> remainder_units;
};

struct BuiltUnits {
  sched::UnitTable units;
  /// Indexed by sharing-group id; empty when the plan has no groups.
  std::vector<GroupRuntime> groups;
  /// Operator-level only: op_units[query][chain position] = unit id.
  std::vector<std::vector<int>> op_units;
};

struct UnitBuilderOptions {
  SchedulingLevel level = SchedulingLevel::kQueryLevel;
  sched::SharingStrategy sharing_strategy = sched::SharingStrategy::kPdt;
  sched::SharingObjective sharing_objective = sched::SharingObjective::kHnr;
};

BuiltUnits BuildUnits(const query::GlobalPlan& plan,
                      const UnitBuilderOptions& options);

}  // namespace aqsios::exec

#endif  // AQSIOS_EXEC_UNIT_BUILDER_H_
