// Translates a GlobalPlan into the engine's schedulable unit table.
//
// Query-level scheduling (non-preemptive, §6): one unit per standalone
// single-stream query, one per sharing group (plus remainder units for
// PDT-excluded segments), and two units (E_LL, E_RR) per two-stream query.
//
// Operator-level scheduling (preemptive, §6): one unit per operator of each
// single-stream chain; the unit's priority derives from the operator segment
// starting at that operator. (Operator-level mode is defined for plain
// single-stream plans; sharing and window joins use query-level units.)

#ifndef AQSIOS_EXEC_UNIT_BUILDER_H_
#define AQSIOS_EXEC_UNIT_BUILDER_H_

#include <vector>

#include "query/plan.h"
#include "sched/sharing.h"
#include "sched/unit.h"

namespace aqsios::exec {

enum class SchedulingLevel { kQueryLevel, kOperatorLevel };

const char* SchedulingLevelName(SchedulingLevel level);

/// Runtime info for one sharing group.
struct GroupRuntime {
  /// Member queries whose segments run (in priority order) when the shared
  /// leaf operator is scheduled.
  std::vector<query::QueryId> executed;
  /// Remainder unit id for each PDT-excluded member, parallel to
  /// `remainder_queries`.
  std::vector<query::QueryId> remainder_queries;
  std::vector<int> remainder_units;
};

/// One fused run of adjacent stateless chain operators, produced at plan
/// build time by FuseChainOps. The engine's columnar train path evaluates
/// the whole run's predicates in a single pass over the gathered columns
/// (docs/performance.md) instead of one operator-at-a-time sweep per
/// operator.
struct FusedKernel {
  /// Absolute chain position of the run's first operator.
  int first_op = 0;
  /// Operators collapsed into the run (>= 1).
  int num_ops = 0;
};

/// Fusion plan of one chain segment [from, chain end).
struct ChainFusion {
  std::vector<FusedKernel> runs;
  /// True when the runs tile the whole segment — every operator was
  /// stateless and fusible. Chains validated by CompiledQuery always
  /// qualify (window joins may only appear as QuerySpec::join_op, never
  /// inside left_ops); the flag exists so the engine can refuse the
  /// columnar path for anything else.
  bool contiguous = true;
};

/// Collapses maximal runs of adjacent stateless operators of
/// ops[from, ops.size()) into FusedKernel descriptors. Stateful operators
/// (window joins, whose evaluation mutates join tables instead of being a
/// pure per-tuple predicate) split the run and belong to no kernel.
ChainFusion FuseChainOps(const std::vector<query::OperatorSpec>& ops,
                         int from);

struct BuiltUnits {
  sched::UnitTable units;
  /// Indexed by sharing-group id; empty when the plan has no groups.
  std::vector<GroupRuntime> groups;
  /// Operator-level only: op_units[query][chain position] = unit id.
  std::vector<std::vector<int>> op_units;
  /// Fusion plan of each unit's chain segment, parallel to `units`
  /// (kQueryChain / kRemainder units only; default-empty for other kinds).
  std::vector<ChainFusion> chain_fusion;
};

struct UnitBuilderOptions {
  SchedulingLevel level = SchedulingLevel::kQueryLevel;
  sched::SharingStrategy sharing_strategy = sched::SharingStrategy::kPdt;
  sched::SharingObjective sharing_objective = sched::SharingObjective::kHnr;
};

BuiltUnits BuildUnits(const query::GlobalPlan& plan,
                      const UnitBuilderOptions& options);

}  // namespace aqsios::exec

#endif  // AQSIOS_EXEC_UNIT_BUILDER_H_
