#include "exec/engine.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace aqsios::exec {
namespace {

// Salts for frozen (order-independent) randomness; keep filter, shared-op,
// and join-pair draws in disjoint key spaces.
constexpr uint64_t kFilterSalt = 0xf117e500;
constexpr uint64_t kSharedOpSalt = 0x54a6ed00;
constexpr uint64_t kJoinPairSalt = 0x301d9a00;

// Operator ordinal offsets distinguishing the segments of a multi-stream
// plan: side segment of join input j starts at j·kSideOrdinalStride; the
// common segment at kCommonOrdinalBase.
constexpr int kSideOrdinalStride = 1000;
constexpr int kCommonOrdinalBase = 1000000;

}  // namespace

void RunCounters::Merge(const RunCounters& other) {
  // Queued-tuple-seconds must be recovered before end_time mutates.
  const double self_queued_seconds = avg_queued_tuples * end_time;
  const double other_queued_seconds = other.avg_queued_tuples * other.end_time;

  scheduling_points += other.scheduling_points;
  unit_executions += other.unit_executions;
  operator_invocations += other.operator_invocations;
  tuples_emitted += other.tuples_emitted;
  tuples_filtered += other.tuples_filtered;
  composites_generated += other.composites_generated;
  overhead_operations += other.overhead_operations;
  adaptation_ticks += other.adaptation_ticks;
  decision_candidates += other.decision_candidates;
  priority_computations += other.priority_computations;
  train_dispatches += other.train_dispatches;
  train_tuples += other.train_tuples;
  max_train_tuples = std::max(max_train_tuples, other.max_train_tuples);
  tuples_offered += other.tuples_offered;
  tuples_shed += other.tuples_shed;
  calibration_epochs += other.calibration_epochs;
  calibration_updates += other.calibration_updates;
  calibration_rekeys += other.calibration_rekeys;
  // Drift gauges are per-engine means; the merged report keeps the worst
  // shard (a max, like end_time) rather than inventing a cross-shard mean
  // with no common denominator.
  calibration_cost_drift =
      std::max(calibration_cost_drift, other.calibration_cost_drift);
  calibration_selectivity_drift = std::max(calibration_selectivity_drift,
                                           other.calibration_selectivity_drift);
  busy_time += other.busy_time;
  overhead_time += other.overhead_time;
  end_time = std::max(end_time, other.end_time);
  peak_queued_tuples += other.peak_queued_tuples;
  avg_queued_tuples =
      end_time > 0.0 ? (self_queued_seconds + other_queued_seconds) / end_time
                     : 0.0;
  queue_length_hist.Merge(other.queue_length_hist);
  exec_busy_hist.Merge(other.exec_busy_hist);
  queue_length = queue_length_hist.Summarize();
  exec_busy = exec_busy_hist.Summarize();
  attribution.Merge(other.attribution);
}

std::string RunCounters::ToString() const {
  std::ostringstream os;
  os << "points=" << scheduling_points << " executions=" << unit_executions
     << " ops=" << operator_invocations << " emitted=" << tuples_emitted
     << " filtered=" << tuples_filtered
     << " composites=" << composites_generated
     << " busy=" << busy_time << "s overhead=" << overhead_time
     << "s end=" << end_time << "s util=" << MeasuredUtilization()
     << " peak_queue=" << peak_queued_tuples
     << " avg_queue=" << avg_queued_tuples
     << " candidates=" << decision_candidates;
  if (train_dispatches > 0) {
    os << " trains=" << train_dispatches
       << " train_tuples=" << train_tuples
       << " max_train=" << max_train_tuples;
  }
  if (tuples_offered > 0) {
    os << " offered=" << tuples_offered << " shed=" << tuples_shed
       << " shed_ratio=" << ShedRatio();
  }
  return os.str();
}

Engine::Engine(const query::GlobalPlan* plan,
               const stream::ArrivalTable* arrivals,
               const EngineConfig& config, sched::Scheduler* scheduler,
               metrics::QosCollector* collector)
    : plan_(plan),
      arrivals_(arrivals),
      config_(config),
      scheduler_(scheduler),
      collector_(collector),
      tracer_(config.tracer),
      telemetry_(config.telemetry) {
  attribution_.sample_every = config.attribution_sample_every;
  if (telemetry_ != nullptr) {
    AQSIOS_CHECK_GE(config.telemetry_publish_every, 1);
    uint64_t period = 1;
    while (period < static_cast<uint64_t>(config.telemetry_publish_every)) {
      period <<= 1;
    }
    telemetry_mask_ = period - 1;
  }
  AQSIOS_CHECK(plan != nullptr);
  AQSIOS_CHECK(arrivals != nullptr);
  AQSIOS_CHECK(scheduler != nullptr);
  AQSIOS_CHECK_GE(config.batch_size, 0);
  AQSIOS_CHECK_GE(config.batch_quantum, 0.0);
  batching_ = config.batch_size != 1 || config.batch_quantum > 0.0;

  UnitBuilderOptions builder_options;
  builder_options.level = config.level;
  builder_options.sharing_strategy = config.sharing_strategy;
  builder_options.sharing_objective = config.sharing_objective;
  built_ = BuildUnits(*plan, builder_options);

  leaf_units_of_stream_.resize(static_cast<size_t>(plan->num_streams()));
  for (const sched::Unit& unit : built_.units) {
    if (unit.input_stream >= 0) {
      AQSIOS_CHECK_LT(unit.input_stream, plan->num_streams());
      leaf_units_of_stream_[static_cast<size_t>(unit.input_stream)].push_back(
          unit.id);
    }
  }

  join_state_.resize(static_cast<size_t>(plan->num_queries()));
  for (const query::CompiledQuery& q : plan->queries()) {
    if (!q.is_multi_stream()) continue;
    auto& states = join_state_[static_cast<size_t>(q.id())];
    for (int stage = 0; stage < q.num_join_stages(); ++stage) {
      const query::OperatorSpec& join = q.StageJoin(stage);
      if (join.is_row_window()) {
        states.push_back(std::make_unique<SymmetricHashJoinState>(
            SymmetricHashJoinState::RowWindow(join.window_rows)));
        continue;
      }
      // Stage 0 sees monotone timestamps on both sides; later stages are
      // fed composites whose timestamps are not monotone, so they run
      // without the ordered-mode eviction optimizations.
      states.push_back(std::make_unique<SymmetricHashJoinState>(
          join.window_seconds, /*ordered=*/stage == 0));
    }
  }

  size_t max_join_stages = 0;
  for (const auto& states : join_state_) {
    max_join_stages = std::max(max_join_stages, states.size());
  }
  // One probe buffer per possible recursion depth, sized up front so the
  // buffers never move while a shallower probe is iterating its own.
  probe_scratch_.resize(max_join_stages + 1);

  scheduler_->Attach(&built_.units);

  shedding_ = config.shed.enabled;
  if (shedding_) {
    AQSIOS_CHECK_GE(config.shed.queue_cap, 0);
    AQSIOS_CHECK_GE(config.shed.shed_fraction, 0.0);
    AQSIOS_CHECK_LE(config.shed.shed_fraction, 1.0);
    // The sheddable set: the bottom shed_fraction of the leaf units ranked
    // ascending by the policy's marginal-slowdown slope (ties by id). Fixed
    // for the whole run, so shed outcomes are a pure function of the arrival
    // sequence — never of scheduling order or wall-clock.
    std::vector<int> leaves;
    for (const sched::Unit& unit : built_.units) {
      if (unit.input_stream >= 0) leaves.push_back(unit.id);
    }
    std::sort(leaves.begin(), leaves.end(), [this](int a, int b) {
      const double pa =
          scheduler_->ShedPriority(built_.units[static_cast<size_t>(a)]);
      const double pb =
          scheduler_->ShedPriority(built_.units[static_cast<size_t>(b)]);
      if (pa != pb) return pa < pb;
      return a < b;
    });
    sheddable_.assign(built_.units.size(), 0);
    const size_t num_sheddable = static_cast<size_t>(
        config.shed.shed_fraction * static_cast<double>(leaves.size()));
    for (size_t i = 0; i < num_sheddable && i < leaves.size(); ++i) {
      sheddable_[static_cast<size_t>(leaves[i])] = 1;
    }
  }

  if (config.adaptation.enabled) {
    AQSIOS_CHECK(config.level == SchedulingLevel::kQueryLevel)
        << "statistics adaptation requires query-level scheduling (root "
           "emissions per execution estimate the segment selectivity)";
    stats_monitor_ = std::make_unique<StatsMonitor>(
        config.adaptation, &built_.units, scheduler_);
  }

  if (config.calibration.enabled) {
    AQSIOS_CHECK(config.level == SchedulingLevel::kQueryLevel)
        << "online calibration requires query-level scheduling (root "
           "emissions per dispatch estimate the segment selectivity)";
    AQSIOS_CHECK(!config.adaptation.enabled)
        << "calibration and windowed adaptation both rewrite UnitStats; "
           "enable one";
    calibrator_ = std::make_unique<sched::CostCalibrator>(
        config.calibration, &built_.units, scheduler_);
  }

  drifting_ = config.drift.enabled;
  if (drifting_) {
    AQSIOS_CHECK(!batching_)
        << "statistics drift requires the per-tuple dispatcher (a train "
           "charges one bulk cost for entries with different arrival times)";
    AQSIOS_CHECK(plan->sharing_groups().empty())
        << "statistics drift is per query; a shared operator execution "
           "spans queries with different drift factors";
    for (const query::CompiledQuery& q : plan->queries()) {
      AQSIOS_CHECK(!q.is_multi_stream())
          << "statistics drift supports single-stream queries only (a "
             "composite has no single arrival time to key the factor on)";
    }
  }

  // Columnar kernel plans: per-operator constants and fusion runs, pinned
  // once here because the compiled plan is immutable for the whole run (the
  // stats monitor adapts UnitStats, never OperatorSpec). Traced runs keep
  // the scalar pass — it emits one kOperatorInvocation event per charge in
  // clock order, which the batched replay cannot reproduce lazily.
  columnar_ = config.use_columnar_kernels && batching_ && tracer_ == nullptr;
  if (columnar_) {
    unit_kernels_.resize(built_.units.size());
    for (const sched::Unit& unit : built_.units) {
      if (unit.kind != sched::UnitKind::kQueryChain &&
          unit.kind != sched::UnitKind::kRemainder) {
        continue;
      }
      const ChainFusion& fusion =
          built_.chain_fusion[static_cast<size_t>(unit.id)];
      // A stateful operator inside the segment leaves a gap no kernel
      // covers; such units (none in validated plans) stay scalar.
      if (!fusion.contiguous) continue;
      const query::CompiledQuery& q = plan_->query(unit.query);
      UnitKernelPlan& kplan = unit_kernels_[static_cast<size_t>(unit.id)];
      kplan.enabled = true;
      kplan.correlated = q.selectivity_mode() ==
                         query::SelectivityMode::kCorrelatedAttribute;
      kplan.from =
          unit.kind == sched::UnitKind::kRemainder ? unit.op_index : 0;
      kplan.n_ops = static_cast<int>(q.spec().left_ops.size());
      for (int x = kplan.from; x < kplan.n_ops; ++x) {
        const query::OperatorSpec& op =
            q.spec().left_ops[static_cast<size_t>(x)];
        KernelOp kop;
        kop.cost = op.cost();
        kop.selectivity = op.EffectiveActualSelectivity();
        kop.threshold = kop.selectivity >= 1.0
                            ? std::numeric_limits<double>::infinity()
                            : kop.selectivity * 100.0;
        kop.ordinal = x;
        kplan.ops.push_back(kop);
      }
      kplan.runs = fusion.runs;
      // Prefix-min thresholds per fused run (see KernelOp::run_prefix_min).
      for (const FusedKernel& run : kplan.runs) {
        double prefix_min = std::numeric_limits<double>::infinity();
        for (int i = 0; i < run.num_ops; ++i) {
          KernelOp& kop = kplan.ops[static_cast<size_t>(
              run.first_op - kplan.from + i)];
          prefix_min = std::min(prefix_min, kop.threshold);
          kop.run_prefix_min = prefix_min;
        }
      }
    }
  }
}

void Engine::Charge(SimTime cost) {
  // charge_scale_ is exactly 1.0 outside a drift run, and x * 1.0 is
  // bit-exact (IEEE 754), so undrifted runs are unperturbed.
  const SimTime scaled = cost * charge_scale_;
  if (tracer_ != nullptr) {
    tracer_->Record({obs::EventKind::kOperatorInvocation, now_, scaled,
                     cur_unit_, cur_query_});
  }
  now_ += scaled;
  counters_.busy_time += scaled;
  ++counters_.operator_invocations;
  if (stats_monitor_ != nullptr) stats_monitor_->AddBusyTime(scaled);
}

void Engine::ChargeBulk(SimTime cost, int64_t invocations) {
  if (invocations <= 0) return;
  const SimTime scaled = cost * charge_scale_;
  if (tracer_ != nullptr) {
    // Traced batched runs keep one event per invocation (the count contract
    // with RunCounters), timestamped at the pre-charge clock — train charges
    // are per-operator, so per-tuple intermediate clocks no longer exist.
    for (int64_t i = 0; i < invocations; ++i) {
      tracer_->Record({obs::EventKind::kOperatorInvocation, now_, scaled,
                       cur_unit_, cur_query_});
    }
  }
  const SimTime total = scaled * static_cast<double>(invocations);
  now_ += total;
  counters_.busy_time += total;
  counters_.operator_invocations += invocations;
  if (stats_monitor_ != nullptr) stats_monitor_->AddBusyTime(total);
}

void Engine::DropTuple(query::QueryId q, int64_t arrival) {
  ++counters_.tuples_filtered;
  if (tracer_ != nullptr) {
    tracer_->Record({obs::EventKind::kFilterDrop, now_, 0.0, cur_unit_,
                     static_cast<int32_t>(q), arrival});
  }
}

void Engine::AttributeEmission(int64_t arrival, SimTime arrival_time,
                               SimTime dependency_delay) {
  if (attribution_.sample_every <= 0 ||
      arrival % attribution_.sample_every != 0) {
    return;
  }
  // The decomposition (see obs/attribution.h): the emitting execution began
  // at exec_start_, right after its scheduling point charged
  // exec_point_overhead_; everything before that point is queue wait.
  const SimTime response = now_ - arrival_time;
  const SimTime processing = now_ - exec_start_;
  const SimTime overhead = exec_point_overhead_;
  const SimTime wait = response - processing - overhead;
  attribution_.AddSample(response, wait, overhead, processing);
  if (dependency_delay >= 0.0) {
    attribution_.dependency_delay.Add(dependency_delay);
  }
}

bool Engine::Passes(const query::OperatorSpec& op,
                    const stream::Arrival& arrival,
                    const query::CompiledQuery& q, int op_ordinal) const {
  // Execution uses the operator's *actual* selectivity; the priorities were
  // computed from the assumed one (they differ under statistics drift).
  // sel_scale_ is exactly 1.0 outside a drift run (bit-inert multiply); in
  // one it scales both realizations deterministically — the correlated
  // threshold moves, and the frozen-Bernoulli draw compares the same frozen
  // uniform against the scaled probability.
  const double selectivity = op.EffectiveActualSelectivity() * sel_scale_;
  if (selectivity >= 1.0) return true;
  if (q.selectivity_mode() == query::SelectivityMode::kCorrelatedAttribute) {
    // The paper's testbed realizes selectivity s as a predicate
    // "attribute <= s·100" over the synthetic uniform (0,100] attribute.
    return arrival.attribute <= selectivity * 100.0;
  }
  const uint64_t key =
      MixKeys(kFilterSalt, static_cast<uint64_t>(arrival.id),
              static_cast<uint64_t>(q.id()), static_cast<uint64_t>(op_ordinal));
  return FrozenBernoulli(key, selectivity);
}

bool Engine::SharedOpPasses(const query::OperatorSpec& op,
                            const stream::Arrival& arrival, int group) const {
  const double selectivity = op.EffectiveActualSelectivity();
  if (selectivity >= 1.0) return true;
  const query::SharingGroup& sharing =
      plan_->sharing_groups()[static_cast<size_t>(group)];
  const query::SelectivityMode mode =
      plan_->query(sharing.members.front()).selectivity_mode();
  if (mode == query::SelectivityMode::kCorrelatedAttribute) {
    return arrival.attribute <= selectivity * 100.0;
  }
  // Keyed on the group's stable id (not the local table index) so the draw
  // is identical when the group runs inside a shard's sub-plan.
  const uint64_t key = MixKeys(kSharedOpSalt,
                               static_cast<uint64_t>(arrival.id),
                               static_cast<uint64_t>(sharing.id));
  return FrozenBernoulli(key, selectivity);
}

bool Engine::RunChainOps(const query::CompiledQuery& q,
                         const stream::Arrival& arrival, int from) {
  const std::vector<query::OperatorSpec>& ops = q.spec().left_ops;
  for (int x = from; x < static_cast<int>(ops.size()); ++x) {
    const query::OperatorSpec& op = ops[static_cast<size_t>(x)];
    Charge(op.cost());
    if (!Passes(op, arrival, q, x)) {
      DropTuple(q.id(), arrival.id);
      return false;
    }
  }
  return true;
}

void Engine::EmitSingle(const query::CompiledQuery& q,
                        stream::ArrivalId arrival, SimTime arrival_time) {
  const SimTime response = now_ - arrival_time;
  // Under cost drift the tuple's true ideal time scales with its charges
  // (charge_scale_ is this dispatch's factor, a pure function of the tuple's
  // query and arrival time), so the reported slowdown stays honest stretch —
  // measuring against the stale static ideal would reward policies for
  // ignoring the drift. Exactly 1.0 (bit-inert) outside a drift run.
  const double slowdown = response / (q.ideal_time() * charge_scale_);
  ++counters_.tuples_emitted;
  if (stats_monitor_ != nullptr) stats_monitor_->AddEmission();
  if (telemetry_ != nullptr) {
    telemetry_slowdown_sum_ += slowdown;
    ++telemetry_slowdown_count_;
    telemetry_max_slowdown_ = std::max(telemetry_max_slowdown_, slowdown);
  }
  if (tracer_ != nullptr) {
    tracer_->Record({obs::EventKind::kEmit, now_, 0.0, cur_unit_,
                     static_cast<int32_t>(q.id()), arrival, slowdown});
  }
  AttributeEmission(arrival, arrival_time, /*dependency_delay=*/-1.0);
  if (collector_ != nullptr) {
    collector_->RecordOutput(q.id(), q.spec().cost_class,
                             q.spec().class_selectivity, arrival_time,
                             response, slowdown);
  }
}

void Engine::ExecuteQueryChain(const sched::Unit& unit,
                               const sched::QueueEntry& entry) {
  const query::CompiledQuery& q = plan_->query(unit.query);
  const stream::Arrival& arrival =
      arrivals_->arrivals[static_cast<size_t>(entry.arrival)];
  if (RunChainOps(q, arrival, /*from=*/0)) {
    EmitSingle(q, arrival.id, entry.arrival_time);
  }
}

void Engine::ExecuteRemainder(const sched::Unit& unit,
                              const sched::QueueEntry& entry) {
  const query::CompiledQuery& q = plan_->query(unit.query);
  const stream::Arrival& arrival =
      arrivals_->arrivals[static_cast<size_t>(entry.arrival)];
  if (RunChainOps(q, arrival, unit.op_index)) {
    EmitSingle(q, arrival.id, entry.arrival_time);
  }
}

void Engine::ExecuteSharedGroup(const sched::Unit& unit,
                                const sched::QueueEntry& entry) {
  const GroupRuntime& runtime =
      built_.groups[static_cast<size_t>(unit.group)];
  const query::CompiledQuery& first = plan_->query(unit.query);
  const query::OperatorSpec& shared = first.spec().left_ops.front();
  const stream::Arrival& arrival =
      arrivals_->arrivals[static_cast<size_t>(entry.arrival)];

  // The shared operator runs once for the whole group.
  Charge(shared.cost());
  if (!SharedOpPasses(shared, arrival, unit.group)) {
    DropTuple(unit.query, arrival.id);
    return;
  }
  // Members bundled with the shared operator execute now, in priority order.
  for (query::QueryId member : runtime.executed) {
    const query::CompiledQuery& q = plan_->query(member);
    if (RunChainOps(q, arrival, /*from=*/1)) {
      EmitSingle(q, arrival.id, entry.arrival_time);
    }
  }
  // PDT-excluded remainders become separately scheduled work.
  for (int remainder_unit : runtime.remainder_units) {
    Enqueue(remainder_unit, entry.arrival, entry.arrival_time);
  }
}

void Engine::ExecuteOperator(const sched::Unit& unit,
                             const sched::QueueEntry& entry) {
  const query::CompiledQuery& q = plan_->query(unit.query);
  const stream::Arrival& arrival =
      arrivals_->arrivals[static_cast<size_t>(entry.arrival)];
  const query::OperatorSpec& op =
      q.spec().left_ops[static_cast<size_t>(unit.op_index)];
  Charge(op.cost());
  if (!Passes(op, arrival, q, unit.op_index)) {
    DropTuple(q.id(), arrival.id);
    return;
  }
  if (unit.op_index + 1 == q.chain_length()) {
    EmitSingle(q, arrival.id, entry.arrival_time);
    return;
  }
  const int next_unit =
      built_.op_units[static_cast<size_t>(q.id())]
                     [static_cast<size_t>(unit.op_index + 1)];
  Enqueue(next_unit, entry.arrival, entry.arrival_time);
}

bool Engine::PassesComposite(const query::OperatorSpec& op, uint64_t identity,
                             query::QueryId q, int op_ordinal) const {
  const double selectivity = op.EffectiveActualSelectivity();
  if (selectivity >= 1.0) return true;
  // Frozen per composite identity: deterministic and independent of the
  // order in which policies generate the composite.
  const uint64_t key = MixKeys(kFilterSalt, identity,
                               static_cast<uint64_t>(q),
                               static_cast<uint64_t>(op_ordinal));
  return FrozenBernoulli(key, selectivity);
}

void Engine::EmitComposite(const query::CompiledQuery& q,
                           const SymmetricHashJoinState::Entry& composite) {
  // Slowdown excludes the dependency delay (§5.1.2):
  //   H = 1 + (D_actual − D_ideal) / T,
  // with D_ideal the departure of the composite in an idle system, reached
  // via the latest-arriving (trigger) constituent's path.
  const SimTime ideal_departure =
      composite.arrival_time +
      q.IdealCompositePathCost(composite.trigger_input);
  const SimTime response = now_ - composite.arrival_time;
  const double slowdown = 1.0 + (now_ - ideal_departure) / q.ideal_time();
  ++counters_.tuples_emitted;
  if (stats_monitor_ != nullptr) stats_monitor_->AddEmission();
  if (telemetry_ != nullptr) {
    telemetry_slowdown_sum_ += slowdown;
    ++telemetry_slowdown_count_;
    telemetry_max_slowdown_ = std::max(telemetry_max_slowdown_, slowdown);
  }
  if (tracer_ != nullptr) {
    tracer_->Record({obs::EventKind::kEmit, now_, 0.0, cur_unit_,
                     static_cast<int32_t>(q.id()),
                     static_cast<int64_t>(composite.id), slowdown});
  }
  AttributeEmission(
      composite.id, composite.arrival_time,
      composite.arrival_time - composite.first_arrival_time);
  if (collector_ != nullptr) {
    collector_->RecordOutput(q.id(), q.spec().cost_class,
                             q.spec().class_selectivity,
                             composite.arrival_time, response, slowdown);
  }
}

void Engine::PropagateComposite(
    const query::CompiledQuery& q, int stage,
    const SymmetricHashJoinState::Entry& composite, int32_t join_key) {
  if (stage == q.num_join_stages()) {
    // Past the last join: the common segment runs once per composite.
    const std::vector<query::OperatorSpec>& common = q.spec().common_ops;
    for (int x = 0; x < static_cast<int>(common.size()); ++x) {
      const query::OperatorSpec& op = common[static_cast<size_t>(x)];
      Charge(op.cost());
      if (!PassesComposite(op, composite.identity, q.id(),
                           kCommonOrdinalBase + x)) {
        DropTuple(q.id(), composite.id);
        return;
      }
    }
    EmitComposite(q, composite);
    return;
  }
  // Enter stage `stage` on its accumulated (left) side.
  Charge(q.StageJoin(stage).cost());
  JoinState(q.id(), stage).Insert(query::Side::kLeft, join_key, composite);
  ProbeAndPropagate(q, stage, query::Side::kLeft, composite, join_key);
}

void Engine::ProbeAndPropagate(const query::CompiledQuery& q, int stage,
                               query::Side side,
                               const SymmetricHashJoinState::Entry& entry,
                               int32_t join_key) {
  const query::OperatorSpec& join = q.StageJoin(stage);
  // Each recursion depth owns one pooled candidates buffer: this level
  // iterates its buffer while PropagateComposite fills deeper ones.
  AQSIOS_DCHECK_LT(static_cast<size_t>(probe_depth_), probe_scratch_.size());
  std::vector<SymmetricHashJoinState::Entry>& candidates =
      probe_scratch_[static_cast<size_t>(probe_depth_)];
  candidates.clear();
  JoinState(q.id(), stage).Probe(side, join_key, entry.timestamp,
                                 &candidates);
  if (tracer_ != nullptr) {
    tracer_->Record({obs::EventKind::kJoinProbe, now_, 0.0, cur_unit_,
                     static_cast<int32_t>(q.id()),
                     static_cast<int64_t>(candidates.size())});
  }
  ++probe_depth_;
  for (const SymmetricHashJoinState::Entry& partner : candidates) {
    // Per-pair match draw, symmetric in the pair identities so the outcome
    // does not depend on processing order (and hence not on the policy).
    const uint64_t pair_hash =
        Mix64(entry.identity) ^ Mix64(partner.identity);
    const uint64_t key = MixKeys(kJoinPairSalt,
                                 static_cast<uint64_t>(q.id()),
                                 static_cast<uint64_t>(stage), pair_hash);
    if (!FrozenBernoulli(key, join.EffectiveActualSelectivity())) continue;
    ++counters_.composites_generated;

    SymmetricHashJoinState::Entry composite;
    composite.id = entry.id;
    composite.identity = MixKeys(kJoinPairSalt + 1, pair_hash);
    // Definition 5 (recursively): composite timestamps/arrivals are the max
    // over constituents; the trigger is the latest-arriving constituent.
    composite.timestamp = std::max(entry.timestamp, partner.timestamp);
    composite.arrival_time =
        std::max(entry.arrival_time, partner.arrival_time);
    composite.first_arrival_time =
        std::min(entry.first_arrival_time, partner.first_arrival_time);
    if (entry.arrival_time > partner.arrival_time) {
      composite.trigger_input = entry.trigger_input;
    } else if (partner.arrival_time > entry.arrival_time) {
      composite.trigger_input = partner.trigger_input;
    } else {
      composite.trigger_input =
          std::min(entry.trigger_input, partner.trigger_input);
    }
    PropagateComposite(q, stage + 1, composite, join_key);
  }
  --probe_depth_;
}

void Engine::ExecuteJoinInput(const sched::Unit& unit,
                              const sched::QueueEntry& entry, int input) {
  const query::CompiledQuery& q = plan_->query(unit.query);
  const stream::Arrival& arrival =
      arrivals_->arrivals[static_cast<size_t>(entry.arrival)];
  const std::vector<query::OperatorSpec>& side_ops = [&]()
      -> const std::vector<query::OperatorSpec>& {
    if (input == 0) return q.spec().left_ops;
    if (input == 1) return q.spec().right_ops;
    return q.spec().extra_stages[static_cast<size_t>(input - 2)].side_ops;
  }();
  const int ordinal_base = input * kSideOrdinalStride;

  // Pre-join segment.
  for (int x = 0; x < static_cast<int>(side_ops.size()); ++x) {
    const query::OperatorSpec& op = side_ops[static_cast<size_t>(x)];
    Charge(op.cost());
    if (!Passes(op, arrival, q, ordinal_base + x)) {
      DropTuple(q.id(), arrival.id);
      return;
    }
  }

  // Join entry: hash, insert, probe (one C_J charge per input tuple; a
  // composite's other C_J charges accrued when its constituents and
  // intermediates were processed — matching the generalized Definition 6).
  const int stage = input <= 1 ? 0 : input - 1;
  const query::Side side =
      input == 0 ? query::Side::kLeft : query::Side::kRight;
  Charge(q.StageJoin(stage).cost());
  SymmetricHashJoinState::Entry self;
  self.id = arrival.id;
  self.timestamp = arrival.time;
  self.arrival_time = entry.arrival_time;
  self.first_arrival_time = entry.arrival_time;
  self.identity = static_cast<uint64_t>(arrival.id);
  self.trigger_input = input;
  JoinState(q.id(), stage).Insert(side, arrival.join_key, self);
  ProbeAndPropagate(q, stage, side, self, arrival.join_key);
}

void Engine::AccrueQueueOccupancy() {
  queued_tuple_seconds_ +=
      static_cast<double>(queued_tuples_) * (now_ - last_occupancy_time_);
  last_occupancy_time_ = now_;
}

void Engine::Enqueue(int unit_id, stream::ArrivalId arrival,
                     SimTime arrival_time) {
  sched::Unit& unit = built_.units[static_cast<size_t>(unit_id)];
  unit.queue.push_back(sched::QueueEntry{arrival, arrival_time});
  AccrueQueueOccupancy();
  ++queued_tuples_;
  counters_.peak_queued_tuples =
      std::max(counters_.peak_queued_tuples, queued_tuples_);
  if (tracer_ != nullptr) {
    tracer_->Record({obs::EventKind::kEnqueue, now_, 0.0, unit_id,
                     static_cast<int32_t>(unit.query),
                     arrivals_->arrivals[static_cast<size_t>(arrival)].id,
                     static_cast<double>(unit.queue.size())});
  }
  scheduler_->OnEnqueue(unit_id);
}

void Engine::DeliverArrivalsUpTo(SimTime time) {
  while (next_arrival_ < arrivals_->size()) {
    const stream::Arrival& arrival =
        arrivals_->arrivals[static_cast<size_t>(next_arrival_)];
    if (arrival.time > time) break;
    if (tracer_ != nullptr) {
      tracer_->Record({obs::EventKind::kTupleArrival, arrival.time, 0.0,
                       static_cast<int32_t>(arrival.stream), -1,
                       static_cast<int64_t>(arrival.id)});
    }
    bool delivered = false;
    for (int unit :
         leaf_units_of_stream_[static_cast<size_t>(arrival.stream)]) {
      // Elastic mode: each engine sees the shared global arrival table but
      // only feeds the leaf queues of the placement groups it currently
      // owns. Cheap single branch when elastic_ is off.
      if (elastic_ &&
          owned_groups_[static_cast<size_t>(group_of_unit_[static_cast<size_t>(
              unit)])] == 0) {
        continue;
      }
      if (shedding_) {
        ++counters_.tuples_offered;
        if (queued_tuples_ >= config_.shed.queue_cap &&
            sheddable_[static_cast<size_t>(unit)] != 0) {
          ++counters_.tuples_shed;
          if (tracer_ != nullptr) {
            tracer_->Record(
                {obs::EventKind::kShed, arrival.time, 0.0, unit,
                 static_cast<int32_t>(
                     built_.units[static_cast<size_t>(unit)].query),
                 static_cast<int64_t>(arrival.id),
                 static_cast<double>(queued_tuples_)});
          }
          continue;
        }
      }
      // Queue entries carry the table *index*; Arrival::id stays global so
      // frozen draws and trace ids are identical inside shard sub-tables.
      Enqueue(unit, next_arrival_, arrival.time);
      delivered = true;
    }
    if (elastic_ && delivered) ++elastic_arrivals_routed_;
    ++next_arrival_;
  }
}

void Engine::ExecuteUnit(int unit_id) {
  sched::Unit& unit = built_.units[static_cast<size_t>(unit_id)];
  AQSIOS_CHECK(unit.has_pending())
      << "scheduler picked empty unit " << unit_id;
  const sched::QueueEntry entry = unit.queue.front();
  unit.queue.pop_front();
  AccrueQueueOccupancy();
  --queued_tuples_;
  scheduler_->OnDequeue(unit_id);
  ++counters_.unit_executions;
  if (stats_monitor_ != nullptr) stats_monitor_->OnExecutionStart(unit_id);

  exec_start_ = now_;
  cur_unit_ = unit_id;
  cur_query_ = static_cast<int32_t>(unit.query);

  if (drifting_) {
    // The factors are pure functions of (query, arrival time): every policy
    // charges the same scaled costs for this tuple no matter when it runs.
    charge_scale_ = config_.drift.CostFactorAt(unit.query, entry.arrival_time);
    sel_scale_ =
        config_.drift.SelectivityFactorAt(unit.query, entry.arrival_time);
  }
  const SimTime dispatch_busy0 = counters_.busy_time;
  const int64_t dispatch_emit0 = counters_.tuples_emitted;

  switch (unit.kind) {
    case sched::UnitKind::kQueryChain:
      ExecuteQueryChain(unit, entry);
      break;
    case sched::UnitKind::kOperator:
      ExecuteOperator(unit, entry);
      break;
    case sched::UnitKind::kSharedGroup:
      ExecuteSharedGroup(unit, entry);
      break;
    case sched::UnitKind::kRemainder:
      ExecuteRemainder(unit, entry);
      break;
    case sched::UnitKind::kJoinSideLeft:
      ExecuteJoinInput(unit, entry, 0);
      break;
    case sched::UnitKind::kJoinSideRight:
      ExecuteJoinInput(unit, entry, 1);
      break;
    case sched::UnitKind::kJoinInput:
      ExecuteJoinInput(unit, entry, unit.op_index);
      break;
  }

  if (calibrator_ != nullptr) {
    calibrator_->OnDispatch(unit_id, /*tuples=*/1,
                            counters_.busy_time - dispatch_busy0,
                            counters_.tuples_emitted - dispatch_emit0);
  }
  exec_busy_hist_.Add(now_ - exec_start_);
  if (tracer_ != nullptr) {
    tracer_->Record(
        {obs::EventKind::kSegmentRun, exec_start_, now_ - exec_start_,
         unit_id, static_cast<int32_t>(unit.query),
         arrivals_->arrivals[static_cast<size_t>(entry.arrival)].id});
  }
  cur_unit_ = -1;
  cur_query_ = -1;
}

size_t Engine::TrainLength(const sched::Unit& unit) const {
  size_t limit = config_.batch_size <= 0
                     ? unit.queue.size()
                     : static_cast<size_t>(config_.batch_size);
  if (config_.batch_quantum > 0.0 && unit.stats.expected_cost > 0.0) {
    const double budget = config_.batch_quantum / unit.stats.expected_cost;
    // The quantum is deterministic up front: an expected-cost tuple budget,
    // never a mid-train cutoff (which would depend on realized
    // selectivities and make train sizes order-sensitive).
    const size_t quantum_cap =
        budget < 1.0 ? size_t{1}
                     : static_cast<size_t>(std::min(
                           budget, static_cast<double>(unit.queue.size())));
    limit = std::min(limit, quantum_cap);
  }
  return std::min(limit, unit.queue.size());
}

void Engine::ExecuteChainTrain(const sched::Unit& unit, size_t count) {
  const query::CompiledQuery& q = plan_->query(unit.query);
  const std::vector<query::OperatorSpec>& ops = q.spec().left_ops;
  const int from =
      unit.kind == sched::UnitKind::kRemainder ? unit.op_index : 0;
  const int n_ops = static_cast<int>(ops.size());
  if (from >= n_ops) {
    for (size_t i = 0; i < count; ++i) {
      EmitSingle(
          q, arrivals_->arrivals[static_cast<size_t>(train_[i].arrival)].id,
          train_[i].arrival_time);
    }
    return;
  }
  train_sel_.clear();
  for (uint32_t i = 0; i < static_cast<uint32_t>(count); ++i) {
    train_sel_.push_back(i);
  }
  // The selectivity mode is a plan invariant: hoist it (and below, each
  // operator's effective selectivity and derived threshold) out of the
  // tuple loop. The predicate is a manually inlined Passes() and must stay
  // in lockstep with it — same comparisons, same MixKeys key.
  const bool correlated =
      q.selectivity_mode() == query::SelectivityMode::kCorrelatedAttribute;
  const uint64_t query_key = static_cast<uint64_t>(q.id());
  // Operator-at-a-time over the surviving run: evaluate each chain operator
  // against every survivor before moving to the next operator, compacting
  // the selection vector in place. Non-root operators charge the clock in
  // bulk (ChargeBulk — one per-operator advance for the whole train); the
  // last operator charges and emits per survivor so each tuple departs with
  // its own virtual timestamp (monotone within the train). At count == 1
  // the charge/emit sequence is exactly the per-tuple RunChainOps +
  // EmitSingle sequence (ChargeBulk of one is Charge).
  for (int x = from; x < n_ops && !train_sel_.empty(); ++x) {
    const query::OperatorSpec& op = ops[static_cast<size_t>(x)];
    const SimTime cost = op.cost();
    const double selectivity = op.EffectiveActualSelectivity();
    const bool pass_all = selectivity >= 1.0;
    const double threshold = selectivity * 100.0;
    const uint64_t ordinal = static_cast<uint64_t>(x);
    const bool last = x + 1 == n_ops;
    if (!last) {
      ChargeBulk(cost, static_cast<int64_t>(train_sel_.size()));
    }
    size_t kept = 0;
    for (const uint32_t idx : train_sel_) {
      const sched::QueueEntry& entry = train_[idx];
      const stream::Arrival& arrival =
          arrivals_->arrivals[static_cast<size_t>(entry.arrival)];
      if (last) Charge(cost);
      const bool passes =
          pass_all ||
          (correlated
               ? arrival.attribute <= threshold
               : FrozenBernoulli(
                     MixKeys(kFilterSalt, static_cast<uint64_t>(arrival.id),
                             query_key, ordinal),
                     selectivity));
      if (!passes) {
        DropTuple(q.id(), arrival.id);
        continue;
      }
      if (last) {
        EmitSingle(q, arrival.id, entry.arrival_time);
      } else {
        train_sel_[kept++] = idx;
      }
    }
    train_sel_.resize(kept);
  }
}

void Engine::EnsureColumnCapacity(size_t n) {
  if (n <= col_capacity_) return;
  size_t capacity = col_capacity_ == 0 ? 256 : col_capacity_;
  while (capacity < n) capacity *= 2;
  // Growth re-carves the arena wholesale: the columns are per-train scratch
  // (nothing survives a dispatch), so dropping every chunk and allocating
  // the larger columns fresh keeps each one contiguous and aligned.
  column_arena_.Reset();
  col_attr_ = column_arena_.AllocateSpan<double>(capacity);
  col_id_ = column_arena_.AllocateSpan<stream::ArrivalId>(capacity);
  col_arrival_time_ = column_arena_.AllocateSpan<SimTime>(capacity);
  col_depth_ = column_arena_.AllocateSpan<uint32_t>(capacity);
  col_sel_ = column_arena_.AllocateSpan<uint32_t>(capacity);
  col_sel_next_ = column_arena_.AllocateSpan<uint32_t>(capacity);
  col_capacity_ = capacity;
}

void Engine::CountReachAttribute(const uint32_t* sel, size_t n,
                                 const KernelOp* ops, int k) {
  kernel_reach_.assign(static_cast<size_t>(k) + 1, 0);
  kernel_reach_[0] = static_cast<int64_t>(n);
  for (int x = 1; x <= k; ++x) {
    const double bound = ops[x - 1].run_prefix_min;
    // An unchanged prefix min means an identical comparison over identical
    // lanes: reuse the count. Random threshold sequences change their
    // running min only O(log k) times, so most entries take this path.
    if (x > 1 && bound == ops[x - 2].run_prefix_min) {
      kernel_reach_[static_cast<size_t>(x)] =
          kernel_reach_[static_cast<size_t>(x) - 1];
      continue;
    }
    int64_t count = 0;
    if (sel == nullptr) {
      for (size_t j = 0; j < n; ++j) {
        count += col_attr_[j] <= bound ? 1 : 0;
      }
    } else {
      for (size_t j = 0; j < n; ++j) {
        count += col_attr_[sel[j]] <= bound ? 1 : 0;
      }
    }
    kernel_reach_[static_cast<size_t>(x)] = count;
    // The prefix min only tightens, so once no lane survives a prefix the
    // remaining entries stay at the zero assign() left there.
    if (count == 0) break;
  }
}

void Engine::DepthKernelBernoulli(const uint32_t* sel, size_t n,
                                  const KernelOp* ops, int k,
                                  uint64_t query_key) {
  // FrozenUniform draws lie in [0, 1), so a selectivity >= 1 operator needs
  // no special case: the draw is spent but the scalar outcome (pass) is
  // reproduced, and the lane loop stays branch-free.
  if (k == 1) {
    // Specialized single-predicate filter kernel.
    const double selectivity = ops[0].selectivity;
    const uint64_t ordinal = static_cast<uint64_t>(ops[0].ordinal);
    for (size_t j = 0; j < n; ++j) {
      const uint64_t id = static_cast<uint64_t>(
          col_id_[sel == nullptr ? j : static_cast<size_t>(sel[j])]);
      const uint64_t key = MixKeys(kFilterSalt, id, query_key, ordinal);
      col_depth_[j] = FrozenUniform(key) < selectivity ? 1u : 0u;
    }
    return;
  }
  for (size_t j = 0; j < n; ++j) {
    const uint64_t id = static_cast<uint64_t>(
        col_id_[sel == nullptr ? j : static_cast<size_t>(sel[j])]);
    // MixKeys(a, b, c, d) == MixKeys(MixKeys(a, b, c), d): the
    // (salt, id, query) prefix is loop-invariant across the run's ops.
    const uint64_t prefix = MixKeys(kFilterSalt, id, query_key);
    uint32_t depth = 0;
    uint32_t alive = 1;
    for (int x = 0; x < k; ++x) {
      const uint64_t key =
          MixKeys(prefix, static_cast<uint64_t>(ops[x].ordinal));
      alive &= FrozenUniform(key) < ops[x].selectivity ? 1u : 0u;
      depth += alive;
    }
    col_depth_[j] = depth;
  }
}

void Engine::ExecuteChainTrainColumnar(const sched::Unit& unit,
                                       size_t count) {
  const query::CompiledQuery& q = plan_->query(unit.query);
  const UnitKernelPlan& kplan = unit_kernels_[static_cast<size_t>(unit.id)];
  if (kplan.from >= kplan.n_ops) {
    for (size_t i = 0; i < count; ++i) {
      EmitSingle(q, col_id_[i], col_arrival_time_[i]);
    }
    return;
  }
  const uint64_t query_key = static_cast<uint64_t>(q.id());
  const bool track_stats = stats_monitor_ != nullptr;
  uint32_t* sel = col_sel_;
  uint32_t* sel_next = col_sel_next_;
  size_t n = count;
  // Lanes scan the columns in gathered order until the first compaction
  // writes a real selection vector.
  bool dense = true;
  for (const FusedKernel& run : kplan.runs) {
    if (n == 0) break;
    const KernelOp* run_ops =
        kplan.ops.data() + (run.first_op - kplan.from);
    const int k = run.num_ops;
    // The run holding the chain's root operator (in a tiled segment: the
    // last run) keeps the root out of the depth kernel — its charges
    // interleave with emissions, handled below.
    const bool rooted = run.first_op + k == kplan.n_ops;
    const int k_pred = rooted ? k - 1 : k;

    if (k_pred > 0) {
      const uint32_t* lanes = dense ? nullptr : sel;
      if (kplan.correlated) {
        // Per-operator survivor counts straight off the attribute column.
        CountReachAttribute(lanes, n, run_ops, k_pred);
      } else {
        DepthKernelBernoulli(lanes, n, run_ops, k_pred, query_key);
        // reach[x] = lanes whose depth reaches local op x (suffix counts of
        // the depth histogram); reach[0] == n, reach[k_pred] == survivors.
        kernel_reach_.assign(static_cast<size_t>(k_pred) + 1, 0);
        for (size_t j = 0; j < n; ++j) {
          ++kernel_reach_[col_depth_[j]];
        }
        for (int x = k_pred - 1; x >= 0; --x) {
          kernel_reach_[static_cast<size_t>(x)] +=
              kernel_reach_[static_cast<size_t>(x) + 1];
        }
      }

      // Clock replay: the scalar pass bulk-charges operator x once for all
      // tuples reaching it (ChargeBulk) — reach[x] is that same count, so
      // one identical multiply-and-add per operator replays the train's
      // entire clock advance.
      for (int x = 0; x < k_pred; ++x) {
        const int64_t reach = kernel_reach_[static_cast<size_t>(x)];
        if (reach <= 0) continue;
        const SimTime total =
            run_ops[x].cost * static_cast<double>(reach);
        now_ += total;
        counters_.busy_time += total;
        counters_.operator_invocations += reach;
        if (track_stats) stats_monitor_->AddBusyTime(total);
      }
      counters_.tuples_filtered +=
          static_cast<int64_t>(n) - kernel_reach_[static_cast<size_t>(k_pred)];

      // Branch-free survivor compaction into the next selection vector.
      // Correlated runs survive iff the attribute clears the whole run's
      // prefix-min bound (one comparison); Bernoulli runs survive iff the
      // lane's depth covers the run.
      size_t kept = 0;
      if (kplan.correlated) {
        const double bound = run_ops[k_pred - 1].run_prefix_min;
        if (dense) {
          for (size_t j = 0; j < n; ++j) {
            sel_next[kept] = static_cast<uint32_t>(j);
            kept += col_attr_[j] <= bound ? 1 : 0;
          }
        } else {
          for (size_t j = 0; j < n; ++j) {
            sel_next[kept] = sel[j];
            kept += col_attr_[sel[j]] <= bound ? 1 : 0;
          }
        }
      } else {
        const uint32_t full = static_cast<uint32_t>(k_pred);
        if (dense) {
          for (size_t j = 0; j < n; ++j) {
            sel_next[kept] = static_cast<uint32_t>(j);
            kept += col_depth_[j] == full ? 1 : 0;
          }
        } else {
          for (size_t j = 0; j < n; ++j) {
            sel_next[kept] = sel[j];
            kept += col_depth_[j] == full ? 1 : 0;
          }
        }
      }
      std::swap(sel, sel_next);
      n = kept;
      dense = false;
    }

    if (!rooted) continue;

    // Root operator: one charge then emit-or-drop per surviving lane, in
    // selection order — the scalar tail sweep replayed exactly, so every
    // emission sees the same virtual timestamp.
    const KernelOp& root = run_ops[k - 1];
    for (size_t j = 0; j < n; ++j) {
      const uint32_t row = dense ? static_cast<uint32_t>(j) : sel[j];
      now_ += root.cost;
      counters_.busy_time += root.cost;
      ++counters_.operator_invocations;
      if (track_stats) stats_monitor_->AddBusyTime(root.cost);
      const bool passes =
          kplan.correlated
              ? col_attr_[row] <= root.threshold
              : FrozenUniform(MixKeys(
                    kFilterSalt, static_cast<uint64_t>(col_id_[row]),
                    query_key, static_cast<uint64_t>(root.ordinal))) <
                    root.selectivity;
      if (passes) {
        EmitSingle(q, col_id_[row], col_arrival_time_[row]);
      } else {
        ++counters_.tuples_filtered;
      }
    }
    return;
  }
}

void Engine::ExecuteUnitTrain(int unit_id) {
  sched::Unit& unit = built_.units[static_cast<size_t>(unit_id)];
  AQSIOS_CHECK(unit.has_pending())
      << "scheduler picked empty unit " << unit_id;
  const size_t count = TrainLength(unit);
  const bool columnar =
      columnar_ && unit_kernels_[static_cast<size_t>(unit_id)].enabled;
  if (columnar) {
    // Gather: one pass converting the drained AoS queue entries into the
    // SoA columns the kernels scan. The train_ scratch stays untouched —
    // everything the chain pass needs lives in the columns.
    EnsureColumnCapacity(count);
    for (size_t i = 0; i < count; ++i) {
      const sched::QueueEntry& entry = unit.queue.front();
      const stream::Arrival& arrival =
          arrivals_->arrivals[static_cast<size_t>(entry.arrival)];
      col_attr_[i] = arrival.attribute;
      col_id_[i] = arrival.id;
      col_arrival_time_[i] = entry.arrival_time;
      unit.queue.pop_front();
    }
  } else {
    train_.clear();
    for (size_t i = 0; i < count; ++i) {
      train_.push_back(unit.queue.front());
      unit.queue.pop_front();
    }
  }
  AccrueQueueOccupancy();
  queued_tuples_ -= static_cast<int64_t>(count);
  // One scheduler reconciliation for the whole train (the amortized re-key).
  scheduler_->OnBatchDequeue(unit_id, static_cast<int>(count));
  counters_.unit_executions += static_cast<int64_t>(count);
  ++counters_.train_dispatches;
  counters_.train_tuples += static_cast<int64_t>(count);
  counters_.max_train_tuples = std::max(counters_.max_train_tuples,
                                        static_cast<int64_t>(count));
  if (stats_monitor_ != nullptr) {
    // Each train tuple is one execution of the unit for the selectivity /
    // cost estimators, exactly as on the per-tuple path.
    for (size_t i = 0; i < count; ++i) {
      stats_monitor_->OnExecutionStart(unit_id);
    }
  }

  exec_start_ = now_;
  cur_unit_ = unit_id;
  cur_query_ = static_cast<int32_t>(unit.query);

  const SimTime dispatch_busy0 = counters_.busy_time;
  const int64_t dispatch_emit0 = counters_.tuples_emitted;

  switch (unit.kind) {
    case sched::UnitKind::kQueryChain:
    case sched::UnitKind::kRemainder:
      if (columnar) {
        ExecuteChainTrainColumnar(unit, count);
      } else {
        ExecuteChainTrain(unit, count);
      }
      break;
    case sched::UnitKind::kOperator:
      for (size_t i = 0; i < count; ++i) ExecuteOperator(unit, train_[i]);
      break;
    case sched::UnitKind::kSharedGroup:
      for (size_t i = 0; i < count; ++i) ExecuteSharedGroup(unit, train_[i]);
      break;
    case sched::UnitKind::kJoinSideLeft:
      for (size_t i = 0; i < count; ++i) {
        ExecuteJoinInput(unit, train_[i], 0);
      }
      break;
    case sched::UnitKind::kJoinSideRight:
      for (size_t i = 0; i < count; ++i) {
        ExecuteJoinInput(unit, train_[i], 1);
      }
      break;
    case sched::UnitKind::kJoinInput:
      for (size_t i = 0; i < count; ++i) {
        ExecuteJoinInput(unit, train_[i], unit.op_index);
      }
      break;
  }

  if (calibrator_ != nullptr) {
    // The whole train is one estimator observation: `count` tuples, their
    // combined busy time, their root emissions — the same ratios the
    // per-tuple path accumulates one dispatch at a time.
    calibrator_->OnDispatch(unit_id, static_cast<int64_t>(count),
                            counters_.busy_time - dispatch_busy0,
                            counters_.tuples_emitted - dispatch_emit0);
  }
  // One busy sample / segment-run event per dispatch: the train is the unit
  // of dispatch, and its span is what queue-wait attribution sees.
  exec_busy_hist_.Add(now_ - exec_start_);
  if (tracer_ != nullptr) {
    tracer_->Record(
        {obs::EventKind::kSegmentRun, exec_start_, now_ - exec_start_,
         unit_id, static_cast<int32_t>(unit.query),
         arrivals_->arrivals[static_cast<size_t>(train_.front().arrival)]
             .id});
  }
  cur_unit_ = -1;
  cur_query_ = -1;
}

void Engine::PublishTelemetry(bool done) {
  obs::TelemetrySample s;
  s.virtual_sec = now_;
  s.busy_sec = counters_.busy_time;
  s.queued_tuples = queued_tuples_;
  // Enqueued-total = executed + still queued; no extra hot-path counter.
  s.tuples_executed = counters_.unit_executions;
  s.tuples_emitted = counters_.tuples_emitted;
  s.tuples_filtered = counters_.tuples_filtered;
  s.tuples_shed = counters_.tuples_shed;
  s.tuples_offered = counters_.tuples_offered;
  s.scheduling_points = counters_.scheduling_points;
  s.slowdown_sum = telemetry_slowdown_sum_;
  s.slowdown_count = telemetry_slowdown_count_;
  s.max_slowdown = telemetry_max_slowdown_;
  if (calibrator_ != nullptr) {
    s.calibration_updates = calibrator_->updates();
    s.calibration_rekeys = calibrator_->rekeys();
    s.calibration_cost_drift = calibrator_->MeanAbsCostDrift();
  }
  s.done = done;
  telemetry_->Publish(s);
}

RunCounters Engine::Run() {
  Begin();
  RunUntil(std::numeric_limits<SimTime>::infinity());
  return Finish();
}

void Engine::Begin() {
  AQSIOS_CHECK(!ran_) << "Engine::Run may be called once";
  ran_ = true;
  DeliverArrivalsUpTo(now_);
}

bool Engine::RunUntil(SimTime barrier) {
  // Catch up deliveries a previous (finite) barrier deferred: if the last
  // epoch's execution overshot its barrier, arrivals in (old barrier, now_]
  // were withheld so a migration at the barrier saw a frozen arrival cursor;
  // they must land before the next pick, exactly as the unbarriered loop
  // delivers up to now_ after every execution.
  DeliverArrivalsUpTo(std::min(now_, barrier));
  sched::SchedulingCost cost;
  while (now_ < barrier) {
    picked_.clear();
    cost.Clear();
    if (!scheduler_->PickNext(now_, &cost, &picked_)) {
      if (next_arrival_ >= arrivals_->size()) return true;  // drained
      const SimTime next_time =
          arrivals_->arrivals[static_cast<size_t>(next_arrival_)].time;
      // The next arrival is beyond the barrier: pause idle. The idle jump —
      // and its delivery and telemetry publish — happens unchanged in the
      // epoch whose barrier covers it, so the eventual state transitions are
      // those of the unbarriered loop.
      if (next_time > barrier) return false;
      now_ = std::max(now_, next_time);
      DeliverArrivalsUpTo(now_);
      // Idle jumps still publish: a sampler watching the cell must see the
      // clock advance even through arrival gaps, or the watchdog would
      // mistake a sparse workload for a stalled shard.
      if (telemetry_ != nullptr) PublishTelemetry(/*done=*/false);
      continue;
    }
    ++counters_.scheduling_points;
    if (telemetry_ != nullptr &&
        (static_cast<uint64_t>(counters_.scheduling_points) &
         telemetry_mask_) == 0) {
      PublishTelemetry(/*done=*/false);
    }
    counters_.overhead_operations += cost.total();
    counters_.decision_candidates += cost.candidates;
    counters_.priority_computations += cost.computations;
    queue_len_hist_.Add(static_cast<double>(queued_tuples_));
    if (tracer_ != nullptr) {
      tracer_->Record({obs::EventKind::kSchedDecision, now_, 0.0,
                       picked_.front(), -1, cost.candidates,
                       cost.chosen_priority});
    }
    exec_point_overhead_ = 0.0;
    if (config_.overhead_op_cost > 0.0 && cost.total() > 0) {
      const SimTime overhead =
          static_cast<double>(cost.total()) * config_.overhead_op_cost;
      now_ += overhead;
      counters_.overhead_time += overhead;
      exec_point_overhead_ = overhead;
    }
    const SimTime busy_before = counters_.busy_time;
    if (batching_) {
      for (int unit : picked_) ExecuteUnitTrain(unit);
    } else {
      for (int unit : picked_) ExecuteUnit(unit);
    }
    if (elastic_) {
      group_busy_[static_cast<size_t>(group_of_unit_[static_cast<size_t>(
          picked_.front())])] += counters_.busy_time - busy_before;
    }
    if (stats_monitor_ != nullptr && stats_monitor_->MaybeAdapt(now_)) {
      ++counters_.adaptation_ticks;
      if (tracer_ != nullptr) {
        tracer_->Record({obs::EventKind::kAdaptationTick, now_, 0.0, -1, -1,
                         stats_monitor_->last_refreshed_units()});
      }
    }
    // Calibration epochs fire at deterministic virtual times, after the
    // dispatch like the adaptive monitor (the epoch sees completed work
    // only). Counters are copied out once in Finish.
    if (calibrator_ != nullptr) calibrator_->MaybeCalibrate(now_);
    // Execution may push the clock past the barrier; deliveries are clamped
    // so the arrival cursor is frozen at the barrier for migrations, and the
    // withheld tail lands at the next RunUntil's entry catch-up.
    DeliverArrivalsUpTo(std::min(now_, barrier));
  }
  return false;  // barrier reached
}

RunCounters Engine::Finish() {
  AccrueQueueOccupancy();
  if (calibrator_ != nullptr) {
    counters_.calibration_epochs = calibrator_->epochs();
    counters_.calibration_updates = calibrator_->updates();
    counters_.calibration_rekeys = calibrator_->rekeys();
    counters_.calibration_cost_drift = calibrator_->MeanAbsCostDrift();
    counters_.calibration_selectivity_drift =
        calibrator_->MeanAbsSelectivityDrift();
  }
  if (telemetry_ != nullptr) PublishTelemetry(/*done=*/true);
  counters_.end_time = now_;
  counters_.avg_queued_tuples =
      now_ > 0.0 ? queued_tuple_seconds_ / now_ : 0.0;
  counters_.queue_length = queue_len_hist_.Summarize();
  counters_.exec_busy = exec_busy_hist_.Summarize();
  // Full histograms travel with the counters so per-shard runs merge their
  // distributions exactly (RunCounters::Merge re-summarizes the union).
  counters_.queue_length_hist = std::move(queue_len_hist_);
  counters_.exec_busy_hist = std::move(exec_busy_hist_);
  counters_.attribution = attribution_;
  return counters_;
}

// --- Elastic shard mode (core/rebalance.h, core/sharded_dsms.cc) ------------

void Engine::ConfigureElastic(const std::vector<int>& group_of_query,
                              int num_groups,
                              std::vector<uint8_t> owned_groups) {
  AQSIOS_CHECK(!ran_) << "ConfigureElastic must precede Begin";
  // Elastic runs disallow the features whose state can't migrate with a
  // group (adaptation rewrites shared stats; shedding/tracing key off
  // whole-engine populations the ownership filter would distort).
  AQSIOS_CHECK(config_.tracer == nullptr) << "elastic mode cannot be traced";
  AQSIOS_CHECK(!config_.adaptation.enabled)
      << "elastic mode is incompatible with adaptation";
  AQSIOS_CHECK(!config_.calibration.enabled)
      << "elastic mode is incompatible with calibration (estimator state "
         "cannot migrate with a group)";
  AQSIOS_CHECK(!config_.shed.enabled)
      << "elastic mode is incompatible with load shedding";
  AQSIOS_CHECK_EQ(static_cast<int64_t>(group_of_query.size()),
                  static_cast<int64_t>(plan_->num_queries()));
  AQSIOS_CHECK_EQ(static_cast<int64_t>(owned_groups.size()),
                  static_cast<int64_t>(num_groups));
  elastic_ = true;
  group_of_query_ = group_of_query;
  owned_groups_ = std::move(owned_groups);
  group_busy_.assign(static_cast<size_t>(num_groups), 0.0);
  group_of_unit_.resize(built_.units.size());
  for (const sched::Unit& unit : built_.units) {
    const int group = group_of_query_[static_cast<size_t>(unit.query)];
    AQSIOS_CHECK_GE(group, 0);
    AQSIOS_CHECK_LT(group, num_groups);
    group_of_unit_[static_cast<size_t>(unit.id)] = group;
  }
}

Engine::GroupState Engine::ExtractGroup(int group) {
  AQSIOS_CHECK(elastic_);
  AQSIOS_CHECK(owned_groups_[static_cast<size_t>(group)] != 0)
      << "extracting group " << group << " from a non-owner";
  GroupState state;
  // Entries leave this engine's population now: settle the occupancy
  // integral before the count changes.
  AccrueQueueOccupancy();
  for (sched::Unit& unit : built_.units) {
    if (group_of_unit_[static_cast<size_t>(unit.id)] != group) continue;
    if (unit.queue.empty()) continue;
    state.queued += static_cast<int64_t>(unit.queue.size());
    state.unit_queues.emplace_back(unit.id, std::move(unit.queue));
  }
  queued_tuples_ -= state.queued;
  for (size_t q = 0; q < join_state_.size(); ++q) {
    if (group_of_query_[q] != group || join_state_[q].empty()) continue;
    state.join_states.emplace_back(static_cast<int>(q),
                                   std::move(join_state_[q]));
    join_state_[q].clear();
  }
  owned_groups_[static_cast<size_t>(group)] = 0;
  scheduler_->ResyncQueues(now_);
  return state;
}

void Engine::InjectGroup(int group, GroupState state, SimTime barrier) {
  AQSIOS_CHECK(elastic_);
  AQSIOS_CHECK(owned_groups_[static_cast<size_t>(group)] == 0)
      << "injecting group " << group << " into an owner";
  AccrueQueueOccupancy();
  // A target below the barrier is paused idle (empty queues), so jumping it
  // to the barrier accrues zero occupancy; the jump guarantees injected
  // entries (arrival_time <= barrier by the delivery clamp) never see a
  // negative head wait.
  now_ = std::max(now_, barrier);
  last_occupancy_time_ = now_;
  for (auto& [unit_id, queue] : state.unit_queues) {
    sched::Unit& unit = built_.units[static_cast<size_t>(unit_id)];
    if (unit.queue.empty()) {
      unit.queue = std::move(queue);
    } else {
      // The target holds residual *stolen* entries of this group — a prefix
      // of the same FIFO, strictly older than everything migrating in:
      // append the remainder behind them.
      for (size_t i = 0; i < queue.size(); ++i) {
        unit.queue.push_back(queue.at(i));
      }
    }
  }
  queued_tuples_ += state.queued;
  counters_.peak_queued_tuples =
      std::max(counters_.peak_queued_tuples, queued_tuples_);
  for (auto& [q, states] : state.join_states) {
    join_state_[static_cast<size_t>(q)] = std::move(states);
  }
  owned_groups_[static_cast<size_t>(group)] = 1;
  scheduler_->ResyncQueues(now_);
}

bool Engine::ExtractStolenTrain(int64_t max_tuples, int* unit_out,
                                std::vector<sched::QueueEntry>* entries) {
  AQSIOS_CHECK(elastic_);
  AQSIOS_CHECK_GT(max_tuples, 0);
  // Stealable work is a prefix of a stateless chain's queue: kQueryChain and
  // kRemainder segments are pure (charge, filter, emit) so a thief can run
  // them against its own clock with no state handoff. Largest backlog wins,
  // ties to the lowest unit id.
  int best = -1;
  size_t best_size = 0;
  for (const sched::Unit& unit : built_.units) {
    if (unit.kind != sched::UnitKind::kQueryChain &&
        unit.kind != sched::UnitKind::kRemainder) {
      continue;
    }
    if (unit.queue.size() > best_size) {
      best_size = unit.queue.size();
      best = unit.id;
    }
  }
  if (best < 0) return false;
  sched::Unit& unit = built_.units[static_cast<size_t>(best)];
  const size_t take =
      std::min(unit.queue.size(), static_cast<size_t>(max_tuples));
  AccrueQueueOccupancy();
  entries->clear();
  entries->reserve(take);
  for (size_t i = 0; i < take; ++i) {
    entries->push_back(unit.queue.front());
    unit.queue.pop_front();
  }
  queued_tuples_ -= static_cast<int64_t>(take);
  scheduler_->ResyncQueues(now_);
  *unit_out = best;
  return true;
}

void Engine::InjectStolenTrain(int unit_id,
                               const std::vector<sched::QueueEntry>& entries,
                               SimTime barrier) {
  AQSIOS_CHECK(elastic_);
  AQSIOS_CHECK(!entries.empty());
  sched::Unit& unit = built_.units[static_cast<size_t>(unit_id)];
  AQSIOS_CHECK(unit.queue.empty()) << "thief must be idle";
  AccrueQueueOccupancy();
  now_ = std::max(now_, barrier);
  last_occupancy_time_ = now_;
  for (const sched::QueueEntry& entry : entries) unit.queue.push_back(entry);
  queued_tuples_ += static_cast<int64_t>(entries.size());
  counters_.peak_queued_tuples =
      std::max(counters_.peak_queued_tuples, queued_tuples_);
  scheduler_->ResyncQueues(now_);
}

}  // namespace aqsios::exec
