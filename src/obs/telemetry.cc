#include "obs/telemetry.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/json.h"
#include "obs/openmetrics.h"

namespace aqsios::obs {

// ---------------------------------------------------------------------------
// TelemetryHub

TelemetryHub::TelemetryHub(int num_shards)
    : shard_queries_(static_cast<size_t>(num_shards)),
      routed_(static_cast<size_t>(num_shards)),
      admission_rejected_(static_cast<size_t>(num_shards)),
      migrations_(static_cast<size_t>(num_shards)),
      steals_(static_cast<size_t>(num_shards)) {
  AQSIOS_CHECK_GE(num_shards, 1);
  cells_.reserve(static_cast<size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    cells_.push_back(std::make_unique<SnapshotCell>());
  }
  for (int i = 0; i < num_shards; ++i) {
    shard_queries_[static_cast<size_t>(i)].store(0, std::memory_order_relaxed);
    routed_[static_cast<size_t>(i)].store(0, std::memory_order_relaxed);
    admission_rejected_[static_cast<size_t>(i)].store(
        0, std::memory_order_relaxed);
    migrations_[static_cast<size_t>(i)].store(0, std::memory_order_relaxed);
    steals_[static_cast<size_t>(i)].store(0, std::memory_order_relaxed);
  }
}

void TelemetryHub::SetShardQueries(int shard, int num_queries) {
  shard_queries_[static_cast<size_t>(shard)].store(num_queries,
                                                   std::memory_order_release);
}

int TelemetryHub::shard_queries(int shard) const {
  return shard_queries_[static_cast<size_t>(shard)].load(
      std::memory_order_acquire);
}

void TelemetryHub::SetRouted(int shard, int64_t routed) {
  routed_[static_cast<size_t>(shard)].store(routed, std::memory_order_relaxed);
}

void TelemetryHub::SetAdmissionRejected(int shard, int64_t rejected) {
  admission_rejected_[static_cast<size_t>(shard)].store(
      rejected, std::memory_order_relaxed);
}

int64_t TelemetryHub::routed(int shard) const {
  return routed_[static_cast<size_t>(shard)].load(std::memory_order_relaxed);
}

int64_t TelemetryHub::admission_rejected(int shard) const {
  return admission_rejected_[static_cast<size_t>(shard)].load(
      std::memory_order_relaxed);
}

void TelemetryHub::SetMigrations(int shard, int64_t migrations) {
  migrations_[static_cast<size_t>(shard)].store(migrations,
                                                std::memory_order_relaxed);
}

void TelemetryHub::SetSteals(int shard, int64_t steals) {
  steals_[static_cast<size_t>(shard)].store(steals,
                                            std::memory_order_relaxed);
}

int64_t TelemetryHub::migrations(int shard) const {
  return migrations_[static_cast<size_t>(shard)].load(
      std::memory_order_relaxed);
}

int64_t TelemetryHub::steals(int shard) const {
  return steals_[static_cast<size_t>(shard)].load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Health

const char* HealthEventKindName(HealthEventKind kind) {
  switch (kind) {
    case HealthEventKind::kStalledShard:
      return "stalled_shard";
    case HealthEventKind::kQueueDivergence:
      return "queue_divergence";
    case HealthEventKind::kShedSpike:
      return "shed_spike";
    case HealthEventKind::kAdmissionSpike:
      return "admission_spike";
    case HealthEventKind::kSloBreach:
      return "slo_breach";
  }
  return "unknown";
}

std::string HealthVerdict::ToString() const {
  if (healthy) return "healthy";
  std::string out;
  auto append = [&out](const char* flag) {
    if (!out.empty()) out += "|";
    out += flag;
  };
  if (queue_divergence) append("queue_divergence");
  if (shed_spike) append("shed_spike");
  if (admission_spike) append("admission_spike");
  if (slo_breach) append("slo_breach");
  return out;
}

HealthVerdict FinalizeHealth(const WatchdogConfig& config,
                             const RunEndStats& stats) {
  HealthVerdict verdict;
  // Queue divergence at run end: the peak queue reached the configured cap,
  // i.e. backlog growth was only stopped (or would not have been stopped) by
  // the cap itself. Without a known cap there is no reproducible bar.
  verdict.queue_divergence =
      config.queue_cap > 0 && stats.peak_queued_tuples >= config.queue_cap;
  if (stats.tuples_offered > 0) {
    const double shed_fraction = static_cast<double>(stats.tuples_shed) /
                                 static_cast<double>(stats.tuples_offered);
    verdict.shed_spike = shed_fraction > config.shed_spike_fraction;
  }
  const int64_t admitted_or_rejected =
      stats.arrivals_routed + stats.admission_rejected;
  if (admitted_or_rejected > 0) {
    const double rejected_fraction =
        static_cast<double>(stats.admission_rejected) /
        static_cast<double>(admitted_or_rejected);
    verdict.admission_spike =
        rejected_fraction > config.admission_spike_fraction;
  }
  if (config.slo_slowdown_target > 0.0) {
    const double p9x = config.slo_quantile >= 0.99 ? stats.p99_slowdown
                                                   : stats.p95_slowdown;
    verdict.slo_breach = p9x > config.slo_slowdown_target;
  }
  verdict.healthy = !verdict.queue_divergence && !verdict.shed_spike &&
                    !verdict.admission_spike && !verdict.slo_breach;
  return verdict;
}

HealthWatchdog::HealthWatchdog(const WatchdogConfig& config, int num_shards)
    : config_(config), shards_(static_cast<size_t>(num_shards)) {
  AQSIOS_CHECK_GE(num_shards, 1);
  AQSIOS_CHECK_GE(config.stall_samples, 1);
  AQSIOS_CHECK_GE(config.divergence_window, 1);
}

void HealthWatchdog::Observe(int64_t sample_index, double wall_ms,
                             const std::vector<ShardObservation>& observations) {
  for (const ShardObservation& o : observations) {
    AQSIOS_CHECK_GE(o.shard, 0);
    AQSIOS_CHECK_LT(static_cast<size_t>(o.shard), shards_.size());
    ShardState& state = shards_[static_cast<size_t>(o.shard)];
    auto fire = [&](HealthEventKind kind, double value, double threshold) {
      HealthEvent event;
      event.kind = kind;
      event.shard = o.shard;
      event.sample = sample_index;
      event.wall_ms = wall_ms;
      event.value = value;
      event.threshold = threshold;
      events_.push_back(event);
    };

    // --- Stalled shard: a shard that owns work, has not finished, and has
    // made no virtual-clock progress for stall_samples consecutive samples.
    // A never-published cell counts as no progress — that is exactly the
    // signature of a run wedged before its engines start (the PR 6 router
    // livelock shape).
    const bool expects_progress = o.num_queries > 0 && !o.sample.done;
    const bool progressed =
        o.published &&
        (!state.seen || o.sample.virtual_sec > state.last_virtual_sec);
    if (expects_progress && !progressed) {
      ++state.stalled_for;
      if (state.stalled_for >= config_.stall_samples && !state.stall_reported) {
        state.stall_reported = true;
        fire(HealthEventKind::kStalledShard,
             static_cast<double>(state.stalled_for),
             static_cast<double>(config_.stall_samples));
      }
    } else {
      state.stalled_for = 0;
      state.stall_reported = false;
    }

    // --- Divergent queue growth: strictly increasing queue length over
    // divergence_window consecutive samples; with a cap configured the
    // queue must also already be past queue_cap_fraction of it.
    if (state.seen && o.published &&
        o.sample.queued_tuples > state.last_queued) {
      ++state.growing_for;
    } else if (o.published && state.seen &&
               o.sample.queued_tuples < state.last_queued) {
      state.growing_for = 0;
      state.divergence_reported = false;
    }
    const bool past_cap_fraction =
        config_.queue_cap <= 0 ||
        static_cast<double>(o.sample.queued_tuples) >
            config_.queue_cap_fraction * static_cast<double>(config_.queue_cap);
    if (state.growing_for >= config_.divergence_window && past_cap_fraction &&
        !state.divergence_reported) {
      state.divergence_reported = true;
      fire(HealthEventKind::kQueueDivergence,
           static_cast<double>(o.sample.queued_tuples),
           static_cast<double>(config_.queue_cap));
    }

    // --- Shed / admission spikes: fraction dropped within this sample
    // window (delta over delta) above the configured fraction.
    if (state.seen && o.published) {
      const int64_t offered_delta = o.sample.tuples_offered - state.last_offered;
      const int64_t shed_delta = o.sample.tuples_shed - state.last_shed;
      if (offered_delta > 0) {
        const double fraction = static_cast<double>(shed_delta) /
                                static_cast<double>(offered_delta);
        if (fraction > config_.shed_spike_fraction) {
          if (!state.shed_reported) {
            state.shed_reported = true;
            fire(HealthEventKind::kShedSpike, fraction,
                 config_.shed_spike_fraction);
          }
        } else {
          state.shed_reported = false;
        }
      }
    }
    if (state.seen) {
      const int64_t routed_delta = o.routed - state.last_routed;
      const int64_t rejected_delta =
          o.admission_rejected - state.last_rejected;
      const int64_t attempts = routed_delta + rejected_delta;
      if (attempts > 0) {
        const double fraction = static_cast<double>(rejected_delta) /
                                static_cast<double>(attempts);
        if (fraction > config_.admission_spike_fraction) {
          if (!state.admission_reported) {
            state.admission_reported = true;
            fire(HealthEventKind::kAdmissionSpike, fraction,
                 config_.admission_spike_fraction);
          }
        } else {
          state.admission_reported = false;
        }
      }
    }

    // --- SLO breach: windowed mean slowdown (delta sum / delta count) above
    // the target. The live rule is a mean-based proxy — exact p9x needs the
    // full histogram, which is not in the hot cells; the run-end verdict
    // (FinalizeHealth) applies the real quantile.
    if (config_.slo_slowdown_target > 0.0 && state.seen && o.published) {
      const double sum_delta = o.sample.slowdown_sum - state.last_slowdown_sum;
      const int64_t count_delta =
          o.sample.slowdown_count - state.last_slowdown_count;
      if (count_delta > 0) {
        const double mean = sum_delta / static_cast<double>(count_delta);
        if (mean > config_.slo_slowdown_target) {
          if (!state.slo_reported) {
            state.slo_reported = true;
            fire(HealthEventKind::kSloBreach, mean,
                 config_.slo_slowdown_target);
          }
        } else {
          state.slo_reported = false;
        }
      }
    }

    if (o.published) {
      state.last_virtual_sec = o.sample.virtual_sec;
      state.last_queued = o.sample.queued_tuples;
      state.last_offered = o.sample.tuples_offered;
      state.last_shed = o.sample.tuples_shed;
      state.last_slowdown_sum = o.sample.slowdown_sum;
      state.last_slowdown_count = o.sample.slowdown_count;
    }
    state.last_routed = o.routed;
    state.last_rejected = o.admission_rejected;
    state.seen = true;
  }
}

// ---------------------------------------------------------------------------
// TelemetrySampler

TelemetrySampler::TelemetrySampler(const TelemetryHub* hub,
                                   const TelemetryOptions& options,
                                   const TelemetryMeta& meta)
    : hub_(hub),
      options_(options),
      meta_(meta),
      watchdog_(options.watchdog, hub->num_shards()) {
  AQSIOS_CHECK(hub != nullptr);
  AQSIOS_CHECK_GT(options.period_ms, 0.0);
  scratch_.resize(static_cast<size_t>(hub->num_shards()));
}

TelemetrySampler::~TelemetrySampler() { Stop(); }

void TelemetrySampler::Start() {
  AQSIOS_CHECK(!started_) << "TelemetrySampler started twice";
  started_ = true;
  start_time_ = std::chrono::steady_clock::now();
  if (options_.http_port >= 0) {
    http_ = std::make_unique<MetricsHttpServer>();
    if (!http_->Start(options_.http_port)) http_.reset();
  }
  if (!options_.jsonl_out.empty()) {
    jsonl_ = std::make_unique<std::ofstream>(options_.jsonl_out,
                                             std::ios::out | std::ios::trunc);
    if (jsonl_->is_open()) {
      // Header record: schema + run metadata, one line, so downstream
      // tooling (json_to_csv.py) can identify the stream.
      JsonWriter json;
      json.BeginObject();
      json.Key("schema");
      json.String("aqsios-telemetry/1");
      json.Key("job");
      json.String(meta_.job);
      json.Key("policy");
      json.String(meta_.policy);
      json.Key("shards");
      json.Number(static_cast<int64_t>(hub_->num_shards()));
      json.Key("period_ms");
      json.Number(options_.period_ms);
      json.EndObject();
      *jsonl_ << json.str() << '\n';
    } else {
      jsonl_.reset();
    }
  }
  thread_ = std::thread([this] { Loop(); });
}

void TelemetrySampler::Stop() {
  if (!started_ || stopped_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  wakeup_.notify_all();
  if (thread_.joinable()) thread_.join();
  // One final fully-consistent sample so short runs still produce a
  // complete exposition and the watchdog sees the end state.
  SampleOnce(/*final_tick=*/true);
  if (jsonl_ != nullptr) jsonl_->flush();
  if (http_ != nullptr) http_->Stop();
  stopped_ = true;
}

const std::vector<HealthEvent>& TelemetrySampler::health_events() const {
  return watchdog_.events();
}

std::string TelemetrySampler::LatestExposition() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return exposition_;
}

int TelemetrySampler::http_port() const {
  return http_ != nullptr ? http_->port() : -1;
}

void TelemetrySampler::Loop() {
  const auto period = std::chrono::duration<double, std::milli>(
      options_.period_ms);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    lock.unlock();
    SampleOnce(/*final_tick=*/false);
    lock.lock();
    wakeup_.wait_for(
        lock, std::chrono::duration_cast<std::chrono::nanoseconds>(period),
        [this] { return stop_requested_; });
  }
}

void TelemetrySampler::SampleOnce(bool final_tick) {
  const int64_t sample_index = samples_.load(std::memory_order_relaxed);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start_time_)
          .count();

  for (int shard = 0; shard < hub_->num_shards(); ++shard) {
    ShardObservation& o = scratch_[static_cast<size_t>(shard)];
    o.shard = shard;
    o.num_queries = hub_->shard_queries(shard);
    const SnapshotCell* cell = hub_->cell(shard);
    o.published = cell->publish_count() > 0;
    // Bounded retry on a torn read; on the final tick the writer has
    // stopped, so the read always converges. A transient tear mid-run just
    // keeps the previous tick's values for this shard.
    for (int attempt = 0; attempt < (final_tick ? 1024 : 8); ++attempt) {
      if (cell->TryRead(&o.sample)) break;
    }
    o.routed = hub_->routed(shard);
    o.admission_rejected = hub_->admission_rejected(shard);
    o.migrations = hub_->migrations(shard);
    o.steals = hub_->steals(shard);
  }

  watchdog_.Observe(sample_index, wall_ms, scratch_);

  const std::string exposition =
      RenderOpenMetrics(meta_, scratch_, sample_index, wall_ms / 1000.0);
  if (!options_.metrics_out.empty()) {
    WriteFileAtomic(options_.metrics_out, exposition);
  }
  if (http_ != nullptr) http_->SetBody(exposition);

  if (jsonl_ != nullptr) {
    JsonWriter json;
    json.BeginObject();
    json.Key("sample");
    json.Number(sample_index);
    json.Key("wall_ms");
    json.Number(wall_ms);
    json.Key("final");
    json.Bool(final_tick);
    json.Key("shards");
    json.BeginArray();
    for (const ShardObservation& o : scratch_) {
      json.BeginObject();
      json.Key("shard");
      json.Number(static_cast<int64_t>(o.shard));
      json.Key("virtual_sec");
      json.Number(o.sample.virtual_sec);
      json.Key("busy_sec");
      json.Number(o.sample.busy_sec);
      json.Key("queued_tuples");
      json.Number(o.sample.queued_tuples);
      json.Key("tuples_executed");
      json.Number(o.sample.tuples_executed);
      json.Key("tuples_emitted");
      json.Number(o.sample.tuples_emitted);
      json.Key("tuples_filtered");
      json.Number(o.sample.tuples_filtered);
      json.Key("tuples_shed");
      json.Number(o.sample.tuples_shed);
      json.Key("tuples_offered");
      json.Number(o.sample.tuples_offered);
      json.Key("scheduling_points");
      json.Number(o.sample.scheduling_points);
      json.Key("routed");
      json.Number(o.routed);
      json.Key("admission_rejected");
      json.Number(o.admission_rejected);
      json.Key("migrations");
      json.Number(o.migrations);
      json.Key("steals");
      json.Number(o.steals);
      json.Key("slowdown_mean");
      json.Number(o.sample.slowdown_count > 0
                      ? o.sample.slowdown_sum /
                            static_cast<double>(o.sample.slowdown_count)
                      : 0.0);
      json.Key("slowdown_max");
      json.Number(o.sample.max_slowdown);
      json.Key("calibration_updates");
      json.Number(o.sample.calibration_updates);
      json.Key("calibration_rekeys");
      json.Number(o.sample.calibration_rekeys);
      json.Key("calibration_cost_drift");
      json.Number(o.sample.calibration_cost_drift);
      json.Key("done");
      json.Bool(o.sample.done);
      json.EndObject();
    }
    json.EndArray();
    // Events fired during this tick (the watchdog appends in order).
    const std::vector<HealthEvent>& events = watchdog_.events();
    json.Key("events");
    json.BeginArray();
    for (size_t i = jsonl_events_emitted_; i < events.size(); ++i) {
      const HealthEvent& event = events[i];
      json.BeginObject();
      json.Key("kind");
      json.String(HealthEventKindName(event.kind));
      json.Key("shard");
      json.Number(static_cast<int64_t>(event.shard));
      json.Key("value");
      json.Number(event.value);
      json.Key("threshold");
      json.Number(event.threshold);
      json.EndObject();
    }
    jsonl_events_emitted_ = events.size();
    json.EndArray();
    json.EndObject();
    *jsonl_ << json.str() << '\n';
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    exposition_ = exposition;
  }
  samples_.store(sample_index + 1, std::memory_order_release);
}

}  // namespace aqsios::obs
