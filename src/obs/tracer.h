// Preallocated ring buffer of trace events.
//
// The engine holds a nullable `EventTracer*`; every instrumentation site is
// `if (tracer != nullptr) tracer->Record(...)`, so disabled tracing costs
// one branch on a pointer already in a register — no virtual call, no
// allocation, nothing on the hot loop (pinned by the counter test in
// tests/obs_tracer_test.cc, which also checks that attaching a tracer leaves
// every simulation result bit-identical: tracing is observation-only).
//
// When the buffer wraps, the oldest events are overwritten and counted in
// dropped(); events() always returns the surviving window in record order.

#ifndef AQSIOS_OBS_TRACER_H_
#define AQSIOS_OBS_TRACER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/event.h"

namespace aqsios::obs {

class EventTracer {
 public:
  /// `capacity` events are preallocated up front, rounded up to the next
  /// power of two so the per-event ring wrap is a mask instead of a divide.
  explicit EventTracer(size_t capacity = size_t{1} << 16);

  EventTracer(const EventTracer&) = delete;
  EventTracer& operator=(const EventTracer&) = delete;

  void Record(const TraceEvent& event) {
    buffer_[next_] = event;
    next_ = (next_ + 1) & mask_;
    ++recorded_;
  }

  size_t capacity() const { return buffer_.size(); }
  /// Total events ever recorded (including overwritten ones).
  int64_t recorded() const { return recorded_; }
  /// Events lost to ring wrap-around.
  int64_t dropped() const {
    return recorded_ <= static_cast<int64_t>(buffer_.size())
               ? 0
               : recorded_ - static_cast<int64_t>(buffer_.size());
  }
  /// Events currently held.
  size_t size() const {
    return recorded_ < static_cast<int64_t>(buffer_.size())
               ? static_cast<size_t>(recorded_)
               : buffer_.size();
  }

  /// The surviving events, oldest first.
  std::vector<TraceEvent> Events() const;

  /// Number of surviving events of one kind.
  int64_t CountOf(EventKind kind) const;

  /// Forgets all recorded events (capacity unchanged).
  void Clear();

 private:
  std::vector<TraceEvent> buffer_;  ///< Power-of-two size.
  size_t mask_ = 0;                 ///< buffer_.size() - 1.
  size_t next_ = 0;
  int64_t recorded_ = 0;
};

}  // namespace aqsios::obs

#endif  // AQSIOS_OBS_TRACER_H_
