// Named metrics registry: counters, gauges, and histograms.
//
// A single owner (the engine, a bench driver, a tool) registers metrics by
// name and updates them through stable references; export walks the registry
// in name order, so serialized output is deterministic. The registry is a
// container, not a synchronization point — one instance per simulation run,
// like the QosCollector.

#ifndef AQSIOS_OBS_REGISTRY_H_
#define AQSIOS_OBS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/json.h"
#include "obs/histogram.h"

namespace aqsios::obs {

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under `name`, creating it at 0. The
  /// reference stays valid for the registry's lifetime.
  int64_t& Counter(const std::string& name) { return counters_[name]; }

  /// Returns the gauge registered under `name`, creating it at 0.
  double& Gauge(const std::string& name) { return gauges_[name]; }

  /// Returns the histogram registered under `name`, creating it with
  /// `options` on first use (later calls ignore `options`).
  Histogram& GetHistogram(const std::string& name,
                          const HistogramOptions& options = {});

  bool HasHistogram(const std::string& name) const {
    return histograms_.count(name) != 0;
  }

  size_t num_counters() const { return counters_.size(); }
  size_t num_gauges() const { return gauges_.size(); }
  size_t num_histograms() const { return histograms_.size(); }

  /// Writes {"counters":{...},"gauges":{...},"histograms":{name:
  /// {count,mean,min,max,p50,p95,p99,p999}}} as one JSON object value into an
  /// in-progress document. Keys are emitted in name order.
  void WriteJson(JsonWriter& json) const;

 private:
  std::map<std::string, int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Writes a HistogramSummary as a JSON object value.
void WriteSummaryJson(JsonWriter& json, const HistogramSummary& summary);

}  // namespace aqsios::obs

#endif  // AQSIOS_OBS_REGISTRY_H_
