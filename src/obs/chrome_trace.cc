#include "obs/chrome_trace.h"

#include <fstream>
#include <string>

#include "common/json.h"

namespace aqsios::obs {
namespace {

constexpr int64_t kPid = 1;
constexpr int64_t kSchedulerTid = 0;
constexpr int64_t kArrivalsTid = 1;
constexpr int64_t kQueryTidBase = 2;

int64_t TidOf(const TraceEvent& event, int num_shards) {
  // Sharded layout: shard s owns tids {2s, 2s+1}; query lanes are global and
  // follow all shard lanes, so a query keeps its lane across shard counts.
  const int64_t scheduler_tid =
      num_shards > 1 ? int64_t{2} * event.shard : kSchedulerTid;
  const int64_t arrivals_tid =
      num_shards > 1 ? int64_t{2} * event.shard + 1 : kArrivalsTid;
  const int64_t query_base =
      num_shards > 1 ? int64_t{2} * num_shards : kQueryTidBase;
  switch (event.kind) {
    case EventKind::kSchedDecision:
    case EventKind::kAdaptationTick:
      return scheduler_tid;
    case EventKind::kTupleArrival:
      return arrivals_tid;
    default:
      return event.query >= 0 ? query_base + event.query : arrivals_tid;
  }
}

/// Virtual seconds → trace microseconds.
double Ts(SimTime t) { return t * 1e6; }

void WriteThreadName(JsonWriter& json, int64_t tid, const std::string& name) {
  json.BeginObject();
  json.Key("name");
  json.String("thread_name");
  json.Key("ph");
  json.String("M");
  json.Key("pid");
  json.Number(kPid);
  json.Key("tid");
  json.Number(tid);
  json.Key("args");
  json.BeginObject();
  json.Key("name");
  json.String(name);
  json.EndObject();
  json.EndObject();
}

void WriteEvent(JsonWriter& json, const TraceEvent& event, int num_shards) {
  const bool span = event.kind == EventKind::kSegmentRun ||
                    event.kind == EventKind::kOperatorInvocation;
  json.BeginObject();
  json.Key("name");
  json.String(EventKindName(event.kind));
  json.Key("ph");
  json.String(span ? "X" : "i");
  json.Key("ts");
  json.Number(Ts(event.time));
  if (span) {
    json.Key("dur");
    json.Number(Ts(event.duration));
  } else {
    // Thread-scoped instant: renders as a tick on its lane.
    json.Key("s");
    json.String("t");
  }
  json.Key("pid");
  json.Number(kPid);
  json.Key("tid");
  json.Number(TidOf(event, num_shards));
  json.Key("args");
  json.BeginObject();
  if (num_shards > 1) {
    json.Key("shard");
    json.Number(static_cast<int64_t>(event.shard));
  }
  if (event.unit >= 0) {
    json.Key("unit");
    json.Number(static_cast<int64_t>(event.unit));
  }
  if (event.query >= 0) {
    json.Key("query");
    json.Number(static_cast<int64_t>(event.query));
  }
  switch (event.kind) {
    case EventKind::kTupleArrival:
      json.Key("arrival");
      json.Number(event.a);
      json.Key("stream");
      json.Number(static_cast<int64_t>(event.unit));
      break;
    case EventKind::kEnqueue:
    case EventKind::kSegmentRun:
      json.Key("arrival");
      json.Number(event.a);
      break;
    case EventKind::kShed:
      json.Key("arrival");
      json.Number(event.a);
      json.Key("queued_tuples");
      json.Number(event.b);
      break;
    case EventKind::kEmit:
      json.Key("arrival");
      json.Number(event.a);
      json.Key("slowdown");
      json.Number(event.b);
      break;
    case EventKind::kJoinProbe:
      json.Key("matches");
      json.Number(event.a);
      break;
    case EventKind::kSchedDecision:
      json.Key("candidates");
      json.Number(event.a);
      json.Key("priority");
      json.Number(event.b);
      break;
    case EventKind::kAdaptationTick:
      json.Key("units_refreshed");
      json.Number(event.a);
      break;
    case EventKind::kOperatorInvocation:
    case EventKind::kFilterDrop:
      break;
  }
  json.EndObject();
  json.EndObject();
}

}  // namespace

std::string ChromeTraceJson(const std::vector<TraceEvent>& events,
                            const ChromeTraceMeta& meta) {
  JsonWriter json;
  json.BeginObject();
  json.Key("displayTimeUnit");
  json.String("ms");
  json.Key("traceEvents");
  json.BeginArray();
  const std::string policy_suffix =
      meta.policy.empty() ? "" : " (" + meta.policy + ")";
  if (meta.num_shards > 1) {
    for (int s = 0; s < meta.num_shards; ++s) {
      const std::string shard = "shard" + std::to_string(s);
      WriteThreadName(json, int64_t{2} * s, shard + " scheduler" +
                                                policy_suffix);
      WriteThreadName(json, int64_t{2} * s + 1, shard + " arrivals");
    }
  } else {
    WriteThreadName(json, kSchedulerTid,
                    meta.policy.empty() ? "scheduler"
                                        : "scheduler" + policy_suffix);
    WriteThreadName(json, kArrivalsTid, "arrivals");
  }
  const int64_t query_base =
      meta.num_shards > 1 ? int64_t{2} * meta.num_shards : kQueryTidBase;
  for (int q = 0; q < meta.num_queries; ++q) {
    WriteThreadName(json, query_base + q, "Q" + std::to_string(q));
  }
  for (const TraceEvent& event : events) {
    WriteEvent(json, event, meta.num_shards);
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

Status WriteChromeTrace(const std::string& path, const EventTracer& tracer,
                        const ChromeTraceMeta& meta) {
  return WriteChromeTrace(path, tracer.Events(), meta);
}

Status WriteChromeTrace(const std::string& path,
                        const std::vector<TraceEvent>& events,
                        const ChromeTraceMeta& meta) {
  std::ofstream file(path);
  if (!file) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  file << ChromeTraceJson(events, meta) << "\n";
  if (!file.good()) {
    return Status::IoError("write to " + path + " failed");
  }
  return Status::Ok();
}

}  // namespace aqsios::obs
