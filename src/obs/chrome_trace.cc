#include "obs/chrome_trace.h"

#include <fstream>
#include <string>

#include "common/json.h"

namespace aqsios::obs {
namespace {

constexpr int64_t kPid = 1;
constexpr int64_t kSchedulerTid = 0;
constexpr int64_t kArrivalsTid = 1;
constexpr int64_t kQueryTidBase = 2;

int64_t TidOf(const TraceEvent& event) {
  switch (event.kind) {
    case EventKind::kSchedDecision:
    case EventKind::kAdaptationTick:
      return kSchedulerTid;
    case EventKind::kTupleArrival:
      return kArrivalsTid;
    default:
      return event.query >= 0 ? kQueryTidBase + event.query : kArrivalsTid;
  }
}

/// Virtual seconds → trace microseconds.
double Ts(SimTime t) { return t * 1e6; }

void WriteThreadName(JsonWriter& json, int64_t tid, const std::string& name) {
  json.BeginObject();
  json.Key("name");
  json.String("thread_name");
  json.Key("ph");
  json.String("M");
  json.Key("pid");
  json.Number(kPid);
  json.Key("tid");
  json.Number(tid);
  json.Key("args");
  json.BeginObject();
  json.Key("name");
  json.String(name);
  json.EndObject();
  json.EndObject();
}

void WriteEvent(JsonWriter& json, const TraceEvent& event) {
  const bool span = event.kind == EventKind::kSegmentRun ||
                    event.kind == EventKind::kOperatorInvocation;
  json.BeginObject();
  json.Key("name");
  json.String(EventKindName(event.kind));
  json.Key("ph");
  json.String(span ? "X" : "i");
  json.Key("ts");
  json.Number(Ts(event.time));
  if (span) {
    json.Key("dur");
    json.Number(Ts(event.duration));
  } else {
    // Thread-scoped instant: renders as a tick on its lane.
    json.Key("s");
    json.String("t");
  }
  json.Key("pid");
  json.Number(kPid);
  json.Key("tid");
  json.Number(TidOf(event));
  json.Key("args");
  json.BeginObject();
  if (event.unit >= 0) {
    json.Key("unit");
    json.Number(static_cast<int64_t>(event.unit));
  }
  if (event.query >= 0) {
    json.Key("query");
    json.Number(static_cast<int64_t>(event.query));
  }
  switch (event.kind) {
    case EventKind::kTupleArrival:
      json.Key("arrival");
      json.Number(event.a);
      json.Key("stream");
      json.Number(static_cast<int64_t>(event.unit));
      break;
    case EventKind::kEnqueue:
    case EventKind::kSegmentRun:
      json.Key("arrival");
      json.Number(event.a);
      break;
    case EventKind::kEmit:
      json.Key("arrival");
      json.Number(event.a);
      json.Key("slowdown");
      json.Number(event.b);
      break;
    case EventKind::kJoinProbe:
      json.Key("matches");
      json.Number(event.a);
      break;
    case EventKind::kSchedDecision:
      json.Key("candidates");
      json.Number(event.a);
      json.Key("priority");
      json.Number(event.b);
      break;
    case EventKind::kAdaptationTick:
      json.Key("units_refreshed");
      json.Number(event.a);
      break;
    case EventKind::kOperatorInvocation:
    case EventKind::kFilterDrop:
      break;
  }
  json.EndObject();
  json.EndObject();
}

}  // namespace

std::string ChromeTraceJson(const std::vector<TraceEvent>& events,
                            const ChromeTraceMeta& meta) {
  JsonWriter json;
  json.BeginObject();
  json.Key("displayTimeUnit");
  json.String("ms");
  json.Key("traceEvents");
  json.BeginArray();
  WriteThreadName(json, kSchedulerTid,
                  meta.policy.empty() ? "scheduler"
                                      : "scheduler (" + meta.policy + ")");
  WriteThreadName(json, kArrivalsTid, "arrivals");
  for (int q = 0; q < meta.num_queries; ++q) {
    WriteThreadName(json, kQueryTidBase + q, "Q" + std::to_string(q));
  }
  for (const TraceEvent& event : events) {
    WriteEvent(json, event);
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

Status WriteChromeTrace(const std::string& path, const EventTracer& tracer,
                        const ChromeTraceMeta& meta) {
  std::ofstream file(path);
  if (!file) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  file << ChromeTraceJson(tracer.Events(), meta) << "\n";
  if (!file.good()) {
    return Status::IoError("write to " + path + " failed");
  }
  return Status::Ok();
}

}  // namespace aqsios::obs
