// Live runtime telemetry: lock-free snapshot cells, a wall-clock sampler,
// and a health watchdog (docs/telemetry.md).
//
// The observability layer so far (tracer, histograms, attribution) is
// post-hoc: nothing is visible until a run finishes. This subsystem makes a
// *running* simulation observable without perturbing it:
//
//  * each shard engine publishes its hot counters (tuples in/out/shed/
//    filtered, queued total, busy virtual-seconds, virtual clock) into a
//    per-shard seqlock-style SnapshotCell — the writer is wait-free (a
//    handful of relaxed stores bracketed by the sequence word), never
//    blocks on readers, and with no cell attached the engine pays one
//    branch on a null pointer, exactly the EventTracer discipline;
//  * a TelemetrySampler thread polls the cells on a wall-clock period and
//    feeds each tick to the OpenMetrics exposition writer
//    (obs/openmetrics.h), a structured JSONL log, and the HealthWatchdog;
//  * the HealthWatchdog turns sample sequences into typed HealthEvents
//    (stalled shard, divergent queue growth, shed/admission spikes, SLO
//    breaches) plus a deterministic run-end HealthVerdict restated from the
//    merged counters, so tests can assert verdicts without wall-clock
//    sensitivity.
//
// Determinism contract: telemetry is observation-only. Attaching a hub and
// sampler never changes any simulation result (pinned by
// tests/obs_telemetry_test.cc); all wall-clock-timed output (exposition
// file, JSONL, live events) is quarantined from the deterministic result
// surface, and only the run-end verdict — a pure function of the merged
// counters and the watchdog config — is part of result JSON, gated behind
// an explicit request.

#ifndef AQSIOS_OBS_TELEMETRY_H_
#define AQSIOS_OBS_TELEMETRY_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace aqsios::obs {

/// One shard engine's hot counters, as published into its SnapshotCell.
/// Plain POD on the caller side; the cell stores each field in a relaxed
/// atomic mirror.
struct TelemetrySample {
  double virtual_sec = 0.0;       ///< The shard engine's virtual clock.
  double busy_sec = 0.0;          ///< Virtual busy (processing) seconds.
  int64_t queued_tuples = 0;      ///< Tuples queued across the shard's units.
  int64_t tuples_executed = 0;    ///< Queue entries dequeued and run.
  int64_t tuples_emitted = 0;     ///< Tuples emitted at query roots.
  int64_t tuples_filtered = 0;    ///< Tuples dropped by operator predicates.
  int64_t tuples_shed = 0;        ///< Source tuples shed at admission.
  int64_t tuples_offered = 0;     ///< Shed-path admission opportunities.
  int64_t scheduling_points = 0;  ///< Scheduling decisions taken.
  double slowdown_sum = 0.0;      ///< Sum of emitted-tuple slowdowns.
  int64_t slowdown_count = 0;     ///< Emissions behind slowdown_sum.
  double max_slowdown = 0.0;      ///< Max emitted-tuple slowdown so far.
  int64_t calibration_updates = 0;  ///< Calibrated stat rewrites so far.
  int64_t calibration_rekeys = 0;   ///< Rewrites that re-keyed pending work.
  double calibration_cost_drift = 0.0;  ///< Mean |c_est/c_static - 1|.
  bool done = false;              ///< The shard's run has drained.
};

/// Single-writer seqlock snapshot cell. The writer (one engine thread)
/// publishes wait-free; any number of reader threads poll TryRead and
/// retry/skip on a torn read. All fields are relaxed atomics bracketed by
/// the acquire/release sequence word, so the cell is race-free under TSan
/// and a consistent read is guaranteed to be one whole Publish.
class alignas(64) SnapshotCell {
 public:
  SnapshotCell() = default;
  SnapshotCell(const SnapshotCell&) = delete;
  SnapshotCell& operator=(const SnapshotCell&) = delete;

  /// Writer side: publishes one whole sample. Wait-free — a dozen relaxed
  /// stores between the odd/even sequence stores; never loops, never locks.
  void Publish(const TelemetrySample& s) {
    const uint64_t seq = seq_.load(std::memory_order_relaxed);
    seq_.store(seq + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    Store(s);
    seq_.store(seq + 2, std::memory_order_release);
  }

  /// Reader side: fills `out` and returns true when a consistent snapshot
  /// was read (sequence even and unchanged across the field reads). Returns
  /// false on a torn read — callers poll again next tick.
  bool TryRead(TelemetrySample* out) const {
    const uint64_t before = seq_.load(std::memory_order_acquire);
    if (before & 1) return false;
    Load(out);
    std::atomic_thread_fence(std::memory_order_acquire);
    const uint64_t after = seq_.load(std::memory_order_relaxed);
    return before == after;
  }

  /// Number of completed Publish calls (0 = never published).
  uint64_t publish_count() const {
    return seq_.load(std::memory_order_acquire) / 2;
  }

 private:
  void Store(const TelemetrySample& s) {
    virtual_sec_.store(s.virtual_sec, std::memory_order_relaxed);
    busy_sec_.store(s.busy_sec, std::memory_order_relaxed);
    queued_tuples_.store(s.queued_tuples, std::memory_order_relaxed);
    tuples_executed_.store(s.tuples_executed, std::memory_order_relaxed);
    tuples_emitted_.store(s.tuples_emitted, std::memory_order_relaxed);
    tuples_filtered_.store(s.tuples_filtered, std::memory_order_relaxed);
    tuples_shed_.store(s.tuples_shed, std::memory_order_relaxed);
    tuples_offered_.store(s.tuples_offered, std::memory_order_relaxed);
    scheduling_points_.store(s.scheduling_points, std::memory_order_relaxed);
    slowdown_sum_.store(s.slowdown_sum, std::memory_order_relaxed);
    slowdown_count_.store(s.slowdown_count, std::memory_order_relaxed);
    max_slowdown_.store(s.max_slowdown, std::memory_order_relaxed);
    calibration_updates_.store(s.calibration_updates,
                               std::memory_order_relaxed);
    calibration_rekeys_.store(s.calibration_rekeys, std::memory_order_relaxed);
    calibration_cost_drift_.store(s.calibration_cost_drift,
                                  std::memory_order_relaxed);
    done_.store(s.done ? 1 : 0, std::memory_order_relaxed);
  }

  void Load(TelemetrySample* out) const {
    out->virtual_sec = virtual_sec_.load(std::memory_order_relaxed);
    out->busy_sec = busy_sec_.load(std::memory_order_relaxed);
    out->queued_tuples = queued_tuples_.load(std::memory_order_relaxed);
    out->tuples_executed = tuples_executed_.load(std::memory_order_relaxed);
    out->tuples_emitted = tuples_emitted_.load(std::memory_order_relaxed);
    out->tuples_filtered = tuples_filtered_.load(std::memory_order_relaxed);
    out->tuples_shed = tuples_shed_.load(std::memory_order_relaxed);
    out->tuples_offered = tuples_offered_.load(std::memory_order_relaxed);
    out->scheduling_points =
        scheduling_points_.load(std::memory_order_relaxed);
    out->slowdown_sum = slowdown_sum_.load(std::memory_order_relaxed);
    out->slowdown_count = slowdown_count_.load(std::memory_order_relaxed);
    out->max_slowdown = max_slowdown_.load(std::memory_order_relaxed);
    out->calibration_updates =
        calibration_updates_.load(std::memory_order_relaxed);
    out->calibration_rekeys =
        calibration_rekeys_.load(std::memory_order_relaxed);
    out->calibration_cost_drift =
        calibration_cost_drift_.load(std::memory_order_relaxed);
    out->done = done_.load(std::memory_order_relaxed) != 0;
  }

  std::atomic<uint64_t> seq_{0};
  std::atomic<double> virtual_sec_{0.0};
  std::atomic<double> busy_sec_{0.0};
  std::atomic<int64_t> queued_tuples_{0};
  std::atomic<int64_t> tuples_executed_{0};
  std::atomic<int64_t> tuples_emitted_{0};
  std::atomic<int64_t> tuples_filtered_{0};
  std::atomic<int64_t> tuples_shed_{0};
  std::atomic<int64_t> tuples_offered_{0};
  std::atomic<int64_t> scheduling_points_{0};
  std::atomic<double> slowdown_sum_{0.0};
  std::atomic<int64_t> slowdown_count_{0};
  std::atomic<double> max_slowdown_{0.0};
  std::atomic<int64_t> calibration_updates_{0};
  std::atomic<int64_t> calibration_rekeys_{0};
  std::atomic<double> calibration_cost_drift_{0.0};
  std::atomic<int32_t> done_{0};
};

/// One run's worth of snapshot cells — one per shard — plus the router-side
/// counters (routed arrivals, admission rejections) that are produced
/// outside any shard engine. The hub is created by the caller (bench, test,
/// application), handed to the simulation via SimulationOptions::telemetry,
/// and polled by a TelemetrySampler; it outlives both.
class TelemetryHub {
 public:
  explicit TelemetryHub(int num_shards);

  TelemetryHub(const TelemetryHub&) = delete;
  TelemetryHub& operator=(const TelemetryHub&) = delete;

  int num_shards() const { return static_cast<int>(cells_.size()); }
  SnapshotCell* cell(int shard) { return cells_[static_cast<size_t>(shard)].get(); }
  const SnapshotCell* cell(int shard) const {
    return cells_[static_cast<size_t>(shard)].get();
  }

  /// Declares how many queries shard `shard` owns. The watchdog uses this to
  /// distinguish a legitimately idle (empty) shard from a wedged one that
  /// never published.
  void SetShardQueries(int shard, int num_queries);
  int shard_queries(int shard) const;

  /// Router-side accounting, published by the routing/admission pass
  /// (relaxed stores; read by the sampler thread).
  void SetRouted(int shard, int64_t routed);
  void SetAdmissionRejected(int shard, int64_t rejected);
  int64_t routed(int shard) const;
  int64_t admission_rejected(int shard) const;

  /// Elastic-runner accounting (core/rebalance.h), published at epoch
  /// barriers: groups migrated out of / trains stolen into each shard.
  void SetMigrations(int shard, int64_t migrations);
  void SetSteals(int shard, int64_t steals);
  int64_t migrations(int shard) const;
  int64_t steals(int shard) const;

 private:
  std::vector<std::unique_ptr<SnapshotCell>> cells_;
  std::vector<std::atomic<int32_t>> shard_queries_;
  std::vector<std::atomic<int64_t>> routed_;
  std::vector<std::atomic<int64_t>> admission_rejected_;
  std::vector<std::atomic<int64_t>> migrations_;
  std::vector<std::atomic<int64_t>> steals_;
};

// ---------------------------------------------------------------------------
// Health watchdog

struct WatchdogConfig {
  /// Consecutive samples with zero virtual-clock progress on a non-done,
  /// non-empty shard before it is declared stalled.
  int stall_samples = 5;
  /// Consecutive samples of strictly growing queue length before queue
  /// growth is declared divergent.
  int divergence_window = 8;
  /// The configured queue cap the divergence and run-end rules compare
  /// against (exec::ShedConfig::queue_cap when shedding is on); 0 = no cap
  /// known — the live rule then keys on sustained growth alone and the
  /// run-end rule never flags divergence.
  int64_t queue_cap = 0;
  /// With a cap known, live divergence additionally requires the queue to
  /// exceed this fraction of the cap (growth toward a far-away cap is not
  /// yet an emergency).
  double queue_cap_fraction = 0.5;
  /// A shed (or admission-rejection) fraction above this — per sample
  /// window live, over the whole run at the end — is flagged as a spike.
  double shed_spike_fraction = 0.2;
  double admission_spike_fraction = 0.2;
  /// Which slowdown quantile the SLO targets at run end (0.95 or 0.99; the
  /// live rule uses the windowed mean slowdown as its online proxy — exact
  /// quantiles need the full histogram, which is not in the hot cells).
  double slo_quantile = 0.95;
  /// Slowdown the p9x must stay under; 0 disables the SLO rule.
  double slo_slowdown_target = 0.0;
};

enum class HealthEventKind : uint8_t {
  kStalledShard,     ///< No virtual-clock progress across stall_samples.
  kQueueDivergence,  ///< Sustained queue growth (vs. cap when known).
  kShedSpike,        ///< Shed fraction of a sample window over threshold.
  kAdmissionSpike,   ///< Admission-rejection fraction over threshold.
  kSloBreach,        ///< Windowed mean slowdown over the SLO target.
};

const char* HealthEventKindName(HealthEventKind kind);

/// One typed watchdog observation. Live events are wall-clock timed and
/// therefore quarantined from the deterministic result surface; they exist
/// to be surfaced (JSONL log, stderr, dashboards) while the run executes.
struct HealthEvent {
  HealthEventKind kind = HealthEventKind::kStalledShard;
  int shard = -1;       ///< -1 = run-wide.
  int64_t sample = 0;   ///< Sampler tick index when the event fired.
  double wall_ms = 0.0; ///< Wall clock since sampler start.
  double value = 0.0;   ///< Measured quantity (samples stalled, queue, ...).
  double threshold = 0.0;  ///< The configured bar it crossed.
};

/// What the sampler hands the watchdog per shard per tick.
struct ShardObservation {
  int shard = 0;
  int num_queries = 0;  ///< 0 = the shard never had work assigned.
  bool published = false;  ///< The cell has been written at least once.
  TelemetrySample sample;
  int64_t routed = 0;
  int64_t admission_rejected = 0;
  int64_t migrations = 0;
  int64_t steals = 0;
};

/// Run-end health verdict: a pure function of the merged run counters and
/// the watchdog config (FinalizeHealth below) — byte-stable across repeats,
/// thread counts, and sampler timing, so tests can pin it. The live
/// stall/divergence observations are counted alongside but never feed the
/// deterministic flags.
struct HealthVerdict {
  bool healthy = true;
  bool queue_divergence = false;  ///< Peak queue reached the configured cap.
  bool shed_spike = false;        ///< Run shed ratio over the threshold.
  bool admission_spike = false;   ///< Rejection fraction over the threshold.
  bool slo_breach = false;        ///< p9x slowdown over the SLO target.

  std::string ToString() const;
};

/// The merged deterministic quantities the run-end verdict is restated
/// from (filled from RunCounters + QosSnapshot by core::RestateHealth).
struct RunEndStats {
  int64_t peak_queued_tuples = 0;
  int64_t tuples_offered = 0;
  int64_t tuples_shed = 0;
  int64_t arrivals_routed = 0;
  int64_t admission_rejected = 0;
  double p95_slowdown = 0.0;
  double p99_slowdown = 0.0;
};

/// Restates the watchdog's verdict deterministically from merged run-end
/// counters. The live watchdog may have seen (and reported) transient
/// episodes the end state no longer shows; this is the reproducible subset.
HealthVerdict FinalizeHealth(const WatchdogConfig& config,
                             const RunEndStats& stats);

/// Online health rules over the sampled sequences. Deterministic in the
/// observation sequence it is fed (the sampler feeds wall-clock-timed
/// sequences; tests feed synthetic ones).
class HealthWatchdog {
 public:
  HealthWatchdog(const WatchdogConfig& config, int num_shards);

  /// Feeds one sampler tick. `observations` holds one entry per shard.
  /// Newly fired events are appended to events() (edge-triggered: each rule
  /// fires once per episode, re-arming when the condition clears).
  void Observe(int64_t sample_index, double wall_ms,
               const std::vector<ShardObservation>& observations);

  const std::vector<HealthEvent>& events() const { return events_; }

 private:
  struct ShardState {
    double last_virtual_sec = 0.0;
    int64_t last_queued = 0;
    int64_t last_offered = 0;
    int64_t last_shed = 0;
    int64_t last_routed = 0;
    int64_t last_rejected = 0;
    double last_slowdown_sum = 0.0;
    int64_t last_slowdown_count = 0;
    int stalled_for = 0;        ///< Consecutive no-progress samples.
    int growing_for = 0;        ///< Consecutive queue-growth samples.
    bool stall_reported = false;
    bool divergence_reported = false;
    bool shed_reported = false;
    bool admission_reported = false;
    bool slo_reported = false;
    bool seen = false;
  };

  WatchdogConfig config_;
  std::vector<ShardState> shards_;
  std::vector<HealthEvent> events_;
};

// ---------------------------------------------------------------------------
// Sampler

/// Static metadata stamped into the exposition and the JSONL header.
struct TelemetryMeta {
  std::string job = "aqsios";   ///< e.g. the bench binary / cell name.
  std::string policy;           ///< Scheduling policy label.
};

struct TelemetryOptions {
  /// Wall-clock sampling period.
  double period_ms = 100.0;
  /// OpenMetrics snapshot file, atomically replaced each tick ("" = off).
  std::string metrics_out;
  /// Structured JSONL telemetry log ("" = off).
  std::string jsonl_out;
  /// Localhost HTTP /metrics port: -1 = off, 0 = ephemeral (the bound port
  /// is reported by http_port()), > 0 = fixed.
  int http_port = -1;
  /// Watchdog thresholds for the live rules.
  WatchdogConfig watchdog;
};

class MetricsHttpServer;  // obs/openmetrics.h

/// Background sampler: polls a TelemetryHub's cells on a wall-clock period
/// and fans each tick out to the OpenMetrics writer, the JSONL log, and the
/// HealthWatchdog. Start() spawns the thread; Stop() takes one final sample
/// (so short runs still produce a complete exposition), flushes, and joins.
/// The hub must outlive the sampler; the sampler is independent of the
/// simulation threads and never blocks them.
class TelemetrySampler {
 public:
  TelemetrySampler(const TelemetryHub* hub, const TelemetryOptions& options,
                   const TelemetryMeta& meta);
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  void Start();
  void Stop();

  bool started() const { return started_; }
  /// Sampler ticks taken so far (final tick included after Stop).
  int64_t samples() const { return samples_.load(std::memory_order_acquire); }
  /// Watchdog events observed so far. Only stable after Stop().
  const std::vector<HealthEvent>& health_events() const;
  /// The last rendered exposition text (empty before the first tick).
  std::string LatestExposition() const;
  /// Bound HTTP port when the endpoint is enabled; -1 otherwise.
  int http_port() const;

 private:
  void Loop();
  /// One sampling tick; `final_tick` forces a fully-consistent read.
  void SampleOnce(bool final_tick);

  const TelemetryHub* hub_;
  TelemetryOptions options_;
  TelemetryMeta meta_;
  HealthWatchdog watchdog_;
  std::unique_ptr<MetricsHttpServer> http_;

  std::thread thread_;
  mutable std::mutex mutex_;  ///< Guards stop_requested_ + wakeup + exposition_.
  std::condition_variable wakeup_;
  bool stop_requested_ = false;
  bool started_ = false;
  bool stopped_ = false;
  std::atomic<int64_t> samples_{0};
  std::string exposition_;
  std::vector<ShardObservation> scratch_;
  size_t jsonl_events_emitted_ = 0;
  std::unique_ptr<std::ofstream> jsonl_;
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace aqsios::obs

#endif  // AQSIOS_OBS_TELEMETRY_H_
