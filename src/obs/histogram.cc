#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "common/check.h"

namespace aqsios::obs {

Histogram::Histogram(const HistogramOptions& options) : options_(options) {
  AQSIOS_CHECK_GT(options.min_value, 0.0);
  AQSIOS_CHECK_GT(options.growth, 1.0);
  AQSIOS_CHECK_GE(options.max_buckets, 2);
  log_growth_ = std::log(options.growth);
  // Fast-path tables for BucketIndex. `edges_[k]` is the smallest value the
  // reference formula `1 + floor(log(v/min)/log(growth) + 1e-9)` maps to
  // bucket k, so "largest k with edges_[k] <= v" reproduces it (up to the
  // last-ulp rounding of the edge itself). The 64-entry mantissa table turns
  // log2 into an exponent read plus one lookup; its granularity error
  // (< 0.023 octaves) is absorbed by the +-1 edge correction steps below.
  inv_log2_growth_ = 1.0 / std::log2(options.growth);
  log2_min_ = std::log2(options.min_value);
  edges_.resize(static_cast<size_t>(options.max_buckets));
  edges_[0] = 0.0;
  for (int k = 1; k < options.max_buckets; ++k) {
    edges_[static_cast<size_t>(k)] =
        options.min_value * std::exp(log_growth_ * (k - 1 - 1e-9));
  }
  for (int i = 0; i < 64; ++i) {
    log2_mantissa_[static_cast<size_t>(i)] =
        std::log2(1.0 + (static_cast<double>(i) + 0.5) / 64.0);
  }
}

int Histogram::BucketIndex(double value) const {
  if (value < options_.min_value) return 0;
  // log2(value) from the exponent bits plus a mantissa-table refinement;
  // value >= min_value > 0 here, so it is a normal (or at worst subnormal
  // with min_value subnormal, which the options CHECKs exclude) double.
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const int exponent = static_cast<int>((bits >> 52) & 0x7ff) - 1023;
  const double log2_value =
      static_cast<double>(exponent) + log2_mantissa_[(bits >> 46) & 63];
  const int last = options_.max_buckets - 1;
  // Clamp while still a double: converting an out-of-range double to int is
  // undefined, and the scaled offset exceeds int range for huge values under
  // a growth barely above 1 (inv_log2_growth_ in the millions). The negated
  // comparison also pins NaN — which fails every ordered comparison,
  // including the min_value gate above — into the last bucket rather than
  // feeding it to the cast.
  const double scaled =
      (log2_value - log2_min_) * inv_log2_growth_ + 1e-9;
  int index;
  if (!(scaled < static_cast<double>(last))) {
    index = last;
  } else {
    index = std::clamp(1 + static_cast<int>(scaled), 1, last);
  }
  while (index < last && value >= edges_[static_cast<size_t>(index) + 1]) {
    ++index;
  }
  while (index > 1 && value < edges_[static_cast<size_t>(index)]) --index;
  return index;
}

double Histogram::BucketLowerEdge(int i) const {
  if (i <= 0) return 0.0;
  return options_.min_value * std::exp(log_growth_ * (i - 1));
}

double Histogram::BucketUpperEdge(int i) const {
  return options_.min_value * std::exp(log_growth_ * i);
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Target rank in [1, count]: the ceil makes Quantile(0.5) of {a, b} pick
  // a, matching nearest-rank semantics.
  const int64_t target = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * static_cast<double>(count_))));
  int64_t cumulative = 0;
  for (int i = 0; i < num_buckets(); ++i) {
    const int64_t in_bucket = counts_[static_cast<size_t>(i)];
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= target) {
      // Linear interpolation inside the bucket by rank fraction.
      const double fraction =
          static_cast<double>(target - cumulative) /
          static_cast<double>(in_bucket);
      const double lower = BucketLowerEdge(i);
      const double upper = BucketUpperEdge(i);
      const double value = lower + (upper - lower) * fraction;
      return std::clamp(value, min_, max_);
    }
    cumulative += in_bucket;
  }
  return max_;
}

HistogramSummary Histogram::Summarize() const {
  HistogramSummary summary;
  summary.count = count_;
  summary.mean = Mean();
  summary.min = Min();
  summary.max = Max();
  summary.p50 = Quantile(0.5);
  summary.p95 = Quantile(0.95);
  summary.p99 = Quantile(0.99);
  summary.p999 = Quantile(0.999);
  return summary;
}

void Histogram::Merge(const Histogram& other) {
  AQSIOS_CHECK(options_.min_value == other.options_.min_value &&
               options_.growth == other.options_.growth &&
               options_.max_buckets == other.options_.max_buckets)
      << "histograms with different bucket layouts cannot be merged";
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  overflow_ += other.overflow_;
  sum_ += other.sum_;
  if (other.num_buckets() > num_buckets()) {
    counts_.resize(other.counts_.size());
  }
  for (int i = 0; i < other.num_buckets(); ++i) {
    counts_[static_cast<size_t>(i)] +=
        other.counts_[static_cast<size_t>(i)];
  }
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  for (int i = 0; i < num_buckets(); ++i) {
    const int64_t n = counts_[static_cast<size_t>(i)];
    if (n == 0) continue;
    os << "[" << BucketLowerEdge(i) << ", " << BucketUpperEdge(i)
       << "): " << n << "\n";
  }
  return os.str();
}

}  // namespace aqsios::obs
