// OpenMetrics text exposition for the live telemetry subsystem
// (docs/telemetry.md).
//
// Renders one TelemetrySampler tick — the per-shard snapshot rows plus the
// run-wide sampler gauges — as an OpenMetrics/Prometheus text exposition:
// `# TYPE`/`# HELP` metadata per family, counter samples with the `_total`
// suffix, `{shard="k"}` labels, and a final `# EOF`. The exposition is
// written to a snapshot file via an atomic tmp+rename replace (scrapers and
// `trace_tool top` never observe a half-written file) and optionally served
// from a minimal localhost-only HTTP `/metrics` endpoint.
//
// The grammar produced here is linted in CI by scripts/check_openmetrics.py
// against a `bench_stress --quick --metrics-out` run.

#ifndef AQSIOS_OBS_OPENMETRICS_H_
#define AQSIOS_OBS_OPENMETRICS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/telemetry.h"

namespace aqsios::obs {

/// Renders one sampler tick as an OpenMetrics text exposition. Pure
/// function of its arguments; `observations` holds one row per shard in
/// shard order and `wall_sec` is the sampler's wall-clock since Start().
std::string RenderOpenMetrics(const TelemetryMeta& meta,
                              const std::vector<ShardObservation>& observations,
                              int64_t sample_index, double wall_sec);

/// Atomically replaces `path` with `body`: writes `path + ".tmp"` and
/// renames it over the target, so concurrent readers always see a complete
/// exposition. Returns false (and leaves the previous snapshot in place) on
/// I/O failure.
bool WriteFileAtomic(const std::string& path, const std::string& body);

/// Minimal localhost-only HTTP server for GET /metrics. One accept thread,
/// one request per connection, response written and the socket closed —
/// deliberately the smallest thing a Prometheus scrape (or curl) can talk
/// to. Not wired into any deterministic surface; serves whatever body
/// SetBody last installed.
class MetricsHttpServer {
 public:
  MetricsHttpServer() = default;
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept thread.
  /// Returns false when the socket cannot be bound.
  bool Start(int port);
  void Stop();

  /// The bound port (useful with port 0); -1 when not running.
  int port() const { return port_; }

  /// Installs the body served to subsequent requests.
  void SetBody(const std::string& body);

 private:
  void AcceptLoop();

  int listen_fd_ = -1;
  int port_ = -1;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  mutable std::mutex body_mutex_;
  std::string body_;
};

}  // namespace aqsios::obs

#endif  // AQSIOS_OBS_OPENMETRICS_H_
