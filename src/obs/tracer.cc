#include "obs/tracer.h"

#include "common/check.h"

namespace aqsios::obs {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kTupleArrival:
      return "tuple_arrival";
    case EventKind::kEnqueue:
      return "enqueue";
    case EventKind::kSegmentRun:
      return "segment_run";
    case EventKind::kOperatorInvocation:
      return "operator";
    case EventKind::kEmit:
      return "emit";
    case EventKind::kFilterDrop:
      return "filter_drop";
    case EventKind::kJoinProbe:
      return "join_probe";
    case EventKind::kSchedDecision:
      return "sched_decision";
    case EventKind::kAdaptationTick:
      return "adaptation_tick";
    case EventKind::kShed:
      return "shed";
  }
  return "unknown";
}

EventTracer::EventTracer(size_t capacity) {
  AQSIOS_CHECK_GT(capacity, 0u);
  // Round up to a power of two: Record() wraps with a mask, not a divide.
  size_t rounded = 1;
  while (rounded < capacity) rounded <<= 1;
  buffer_.resize(rounded);
  mask_ = rounded - 1;
}

std::vector<TraceEvent> EventTracer::Events() const {
  std::vector<TraceEvent> out;
  const size_t n = size();
  out.reserve(n);
  // Oldest surviving event: next_ when the ring has wrapped, 0 otherwise.
  const size_t start =
      recorded_ > static_cast<int64_t>(buffer_.size()) ? next_ : 0;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(buffer_[(start + i) & mask_]);
  }
  return out;
}

int64_t EventTracer::CountOf(EventKind kind) const {
  int64_t count = 0;
  const size_t n = size();
  const size_t start =
      recorded_ > static_cast<int64_t>(buffer_.size()) ? next_ : 0;
  for (size_t i = 0; i < n; ++i) {
    if (buffer_[(start + i) & mask_].kind == kind) ++count;
  }
  return count;
}

void EventTracer::Clear() {
  next_ = 0;
  recorded_ = 0;
}

}  // namespace aqsios::obs
