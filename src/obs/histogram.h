// HDR-style log-bucketed histogram with deterministic quantiles.
//
// The QoS reservoir sample the collector used before this subsystem gave
// seed-dependent p50/p99 estimates; regression tracking wants quantiles that
// are a pure function of the recorded values. This histogram uses geometric
// ("HDR-style") buckets: bucket i >= 1 covers
//
//   [min_value * growth^(i-1), min_value * growth^i)
//
// so the relative quantile error is bounded by (growth - 1) regardless of
// the value range; bucket 0 catches everything below min_value (including
// exact zeros). Values past the last bucket are clamped into it and counted
// as overflow. Recording is O(1), memory is bounded by max_buckets, and both
// recording and Quantile() are deterministic — no seed, no sampling.

#ifndef AQSIOS_OBS_HISTOGRAM_H_
#define AQSIOS_OBS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace aqsios::obs {

struct HistogramOptions {
  /// Lower edge of the first geometric bucket; values below it (including
  /// 0) land in the dedicated underflow bucket 0.
  double min_value = 1e-6;
  /// Geometric growth per bucket (> 1). The default 2^(1/16) bounds the
  /// relative quantile error at ~4.4% per bucket.
  double growth = 1.0442737824274138;  // 2^(1/16)
  /// Hard cap on allocated buckets; with the defaults 656 buckets span
  /// min_value * 2^40. Values beyond the cap clamp into the last bucket.
  int max_buckets = 656;
};

/// Summary statistics of a histogram, cheap to copy into result structs.
struct HistogramSummary {
  int64_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

class Histogram {
 public:
  Histogram() : Histogram(HistogramOptions()) {}
  explicit Histogram(const HistogramOptions& options);

  void Add(double value);

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double Min() const { return count_ == 0 ? 0.0 : min_; }
  double Max() const { return count_ == 0 ? 0.0 : max_; }
  /// Values clamped into the last bucket because they exceeded the range.
  int64_t overflow() const { return overflow_; }

  /// Allocated buckets (lazily grown up to options.max_buckets).
  int num_buckets() const { return static_cast<int>(counts_.size()); }
  int64_t bucket_count(int i) const {
    return counts_[static_cast<size_t>(i)];
  }
  /// Lower edge of bucket i (0 for the underflow bucket 0).
  double BucketLowerEdge(int i) const;
  /// Upper edge of bucket i.
  double BucketUpperEdge(int i) const;

  /// Deterministic q-quantile (q in [0,1]): finds the bucket holding the
  /// target rank, interpolates linearly inside it, and clamps to the exact
  /// observed [Min, Max]. 0 when empty.
  double Quantile(double q) const;

  HistogramSummary Summarize() const;

  /// Merges another histogram recorded with identical options.
  void Merge(const Histogram& other);

  /// ASCII rendering, one line per non-empty bucket (debug/inspect aid).
  std::string ToString() const;

 private:
  int BucketIndex(double value) const;

  HistogramOptions options_;
  double log_growth_ = 0.0;
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
  int64_t overflow_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace aqsios::obs

#endif  // AQSIOS_OBS_HISTOGRAM_H_
