// HDR-style log-bucketed histogram with deterministic quantiles.
//
// The QoS reservoir sample the collector used before this subsystem gave
// seed-dependent p50/p99 estimates; regression tracking wants quantiles that
// are a pure function of the recorded values. This histogram uses geometric
// ("HDR-style") buckets: bucket i >= 1 covers
//
//   [min_value * growth^(i-1), min_value * growth^i)
//
// so the relative quantile error is bounded by (growth - 1) regardless of
// the value range; bucket 0 catches everything below min_value (including
// exact zeros). Values past the last bucket are clamped into it and counted
// as overflow. Recording is O(1), memory is bounded by max_buckets, and both
// recording and Quantile() are deterministic — no seed, no sampling.

#ifndef AQSIOS_OBS_HISTOGRAM_H_
#define AQSIOS_OBS_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

namespace aqsios::obs {

struct HistogramOptions {
  /// Lower edge of the first geometric bucket; values below it (including
  /// 0) land in the dedicated underflow bucket 0.
  double min_value = 1e-6;
  /// Geometric growth per bucket (> 1). The default 2^(1/16) bounds the
  /// relative quantile error at ~4.4% per bucket.
  double growth = 1.0442737824274138;  // 2^(1/16)
  /// Hard cap on allocated buckets; with the defaults 656 buckets span
  /// min_value * 2^40. Values beyond the cap clamp into the last bucket.
  int max_buckets = 656;
};

/// Summary statistics of a histogram, cheap to copy into result structs.
/// The quantile set matches QosSnapshot (p50/p95/p99/p999) so every exported
/// distribution speaks the same language.
struct HistogramSummary {
  int64_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

class Histogram {
 public:
  Histogram() : Histogram(HistogramOptions()) {}
  explicit Histogram(const HistogramOptions& options);

  // Defined inline below: recording runs once or twice per scheduling point
  // (~10^6/s in a sweep cell), so the common cache-hit path must not pay a
  // call.
  void Add(double value);

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double Min() const { return count_ == 0 ? 0.0 : min_; }
  double Max() const { return count_ == 0 ? 0.0 : max_; }
  /// Values clamped into the last bucket because they exceeded the range.
  int64_t overflow() const { return overflow_; }

  /// Allocated buckets (lazily grown up to options.max_buckets).
  int num_buckets() const { return static_cast<int>(counts_.size()); }
  int64_t bucket_count(int i) const {
    return counts_[static_cast<size_t>(i)];
  }
  /// Lower edge of bucket i (0 for the underflow bucket 0).
  double BucketLowerEdge(int i) const;
  /// Upper edge of bucket i.
  double BucketUpperEdge(int i) const;

  /// Deterministic q-quantile (q in [0,1]): finds the bucket holding the
  /// target rank, interpolates linearly inside it, and clamps to the exact
  /// observed [Min, Max]. 0 when empty.
  double Quantile(double q) const;

  HistogramSummary Summarize() const;

  /// Merges another histogram recorded with identical options.
  void Merge(const Histogram& other);

  /// ASCII rendering, one line per non-empty bucket (debug/inspect aid).
  std::string ToString() const;

 private:
  int BucketIndex(double value) const;

  /// Memoized BucketIndex. Add() is on the engine's per-scheduling-point
  /// hot path and the recorded streams repeat values heavily (integer queue
  /// lengths random-walking in a narrow band, per-query-constant busy
  /// times), so a small open-addressed value→index cache skips the std::log
  /// most of the time. Pure memoization of BucketIndex — the resulting
  /// bucket index, and hence every summary and quantile, is bit-identical
  /// with or without it.
  struct CacheSlot {
    // NaN never compares equal, so fresh slots never hit.
    double value = std::numeric_limits<double>::quiet_NaN();
    int index = 0;
  };
  static constexpr size_t kCacheSlots = 1024;  // power of two

  HistogramOptions options_;
  double log_growth_ = 0.0;
  double inv_log2_growth_ = 0.0;
  double log2_min_ = 0.0;
  /// Precomputed bucket lower edges (see constructor) — lets BucketIndex
  /// replace std::log with an exponent read, a table lookup, and at most a
  /// couple of edge comparisons.
  std::vector<double> edges_;
  std::array<double, 64> log2_mantissa_{};
  std::array<CacheSlot, kCacheSlots> cache_;
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
  int64_t overflow_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

inline void Histogram::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  CacheSlot& slot = cache_[(bits * 0x9E3779B97F4A7C15ull) >>
                           (64 - 10)];  // top 10 bits: kCacheSlots == 1024
  int index;
  if (slot.value == value) {
    index = slot.index;
  } else {
    index = BucketIndex(value);
    slot.value = value;
    slot.index = index;
  }
  if (index == options_.max_buckets - 1 &&
      value >= BucketUpperEdge(index)) {
    ++overflow_;
  }
  if (index >= num_buckets()) counts_.resize(static_cast<size_t>(index) + 1);
  ++counts_[static_cast<size_t>(index)];
}

}  // namespace aqsios::obs

#endif  // AQSIOS_OBS_HISTOGRAM_H_
