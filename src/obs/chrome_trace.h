// Chrome trace-event JSON export (Perfetto / chrome://tracing loadable).
//
// Lane layout: one process ("aqsios"), with
//   tid 0            — the scheduler lane (decisions, adaptation ticks);
//   tid 1            — the arrivals lane (stream tuples entering);
//   tid 2 + query_id — one lane per query (segment runs, operator
//                      invocations, emits, drops, join probes).
//
// Merged sharded traces (ChromeTraceMeta::num_shards > 1, see
// obs/shard_trace.h) get stable per-shard lanes instead: shard s owns
//   tid 2s     — "shard<s> scheduler" (that shard's decisions/ticks);
//   tid 2s + 1 — "shard<s> arrivals" (tuples routed to that shard);
// and query lanes follow at tid 2·num_shards + global query id, so a
// query's lane does not depend on which shard ran it.
//
// Virtual seconds map to trace microseconds (the trace "us" unit), so one
// simulated second reads as one second in the viewer. Spans (segment runs,
// operator invocations) become "X" complete events; everything else becomes
// "i" instants. Lane names are emitted as "M" metadata events.

#ifndef AQSIOS_OBS_CHROME_TRACE_H_
#define AQSIOS_OBS_CHROME_TRACE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/event.h"
#include "obs/tracer.h"

namespace aqsios::obs {

struct ChromeTraceMeta {
  /// Queries in the traced plan (one lane each).
  int num_queries = 0;
  /// Policy name shown in the scheduler lane label.
  std::string policy;
  /// Shards in the traced run; > 1 switches to the per-shard lane layout
  /// described above (events must carry TraceEvent::shard, i.e. come from
  /// MergeShardTraces). 1 keeps the classic single-scheduler layout.
  int num_shards = 1;
};

/// Renders the tracer's surviving events as a Chrome trace-event JSON
/// document: {"displayTimeUnit":"ms","traceEvents":[...]}.
std::string ChromeTraceJson(const std::vector<TraceEvent>& events,
                            const ChromeTraceMeta& meta);

/// Writes ChromeTraceJson(tracer.Events(), meta) to `path`.
Status WriteChromeTrace(const std::string& path, const EventTracer& tracer,
                        const ChromeTraceMeta& meta);

/// Writes ChromeTraceJson(events, meta) to `path` (merged sharded traces).
Status WriteChromeTrace(const std::string& path,
                        const std::vector<TraceEvent>& events,
                        const ChromeTraceMeta& meta);

}  // namespace aqsios::obs

#endif  // AQSIOS_OBS_CHROME_TRACE_H_
