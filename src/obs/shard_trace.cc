#include "obs/shard_trace.h"

#include <algorithm>

#include "common/check.h"

namespace aqsios::obs {

std::vector<TraceEvent> MergeShardTraces(
    const std::vector<ShardTraceInput>& shards) {
  std::vector<TraceEvent> merged;
  size_t total = 0;
  for (const ShardTraceInput& shard : shards) {
    if (shard.tracer != nullptr) total += shard.tracer->size();
  }
  merged.reserve(total);
  for (size_t s = 0; s < shards.size(); ++s) {
    const ShardTraceInput& shard = shards[s];
    if (shard.tracer == nullptr) continue;
    const std::vector<int32_t>* map = shard.query_id_map;
    for (TraceEvent event : shard.tracer->Events()) {
      event.shard = static_cast<int16_t>(s);
      if (map != nullptr && !map->empty() && event.query >= 0) {
        AQSIOS_CHECK_LT(static_cast<size_t>(event.query), map->size());
        event.query = (*map)[static_cast<size_t>(event.query)];
      }
      merged.push_back(event);
    }
  }
  // Concatenation order is (shard, within-shard record order); a stable sort
  // on the timestamp alone preserves exactly that order among ties.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.time < b.time;
                   });
  return merged;
}

}  // namespace aqsios::obs
