// Per-tuple stage attribution of response time.
//
// For a 1-in-N sample of emitted tuples the engine decomposes the response
// time R = D − A into where the simulated time actually went:
//
//   queue_wait      — time from system arrival to the start of the unit
//                     execution that emitted the tuple, minus the scheduling
//                     overhead of that execution's own decision. For
//                     query-level scheduling of single-stream queries this
//                     is pure leaf-queue wait (the paper's W_x); for
//                     operator-level scheduling it also contains the
//                     upstream segments' wait and processing.
//   sched_overhead  — overhead charged at the scheduling point that
//                     dispatched the emitting execution (0 unless overhead
//                     charging is enabled, §9.2).
//   processing      — busy time of the emitting execution up to the emit.
//   dependency_delay — composites only (§5.1.2): how long the earliest
//                     constituent waited for the latest (trigger)
//                     constituent to arrive, A_max − A_min. The slowdown
//                     definition measures R from A_max, i.e. it excludes
//                     exactly this component; recording it makes that
//                     exclusion auditable per run.
//
// The identity R = queue_wait + sched_overhead + processing holds exactly
// for every sampled tuple (dependency_delay sits *outside* R by
// construction). Sampling is keyed on the arrival id, so the same tuples
// are sampled under every policy and the breakdowns are comparable.
//
// Batched dispatch (EngineConfig::batch_size != 1) keeps the identity and
// the field set unchanged: the execution start is the *train* start, so a
// tuple's queue_wait ends when its train is dispatched (not when the tuple
// itself is reached within the train), processing covers the train's busy
// time up to the emit, and sched_overhead is the single whole-batch charge
// of the decision that dispatched the train — the amortization batching
// exists to provide shows up here as a smaller per-tuple overhead share.

#ifndef AQSIOS_OBS_ATTRIBUTION_H_
#define AQSIOS_OBS_ATTRIBUTION_H_

#include <cstdint>

#include "common/stats.h"

namespace aqsios::obs {

struct StageAttribution {
  /// Sampling period N (a tuple is sampled when arrival_id % N == 0);
  /// 0 = attribution disabled.
  int64_t sample_every = 0;

  aqsios::RunningStats response;
  aqsios::RunningStats queue_wait;
  aqsios::RunningStats sched_overhead;
  aqsios::RunningStats processing;
  /// Only composite emissions contribute (count() < samples() is expected
  /// on mixed workloads).
  aqsios::RunningStats dependency_delay;

  int64_t samples() const { return response.count(); }

  void AddSample(double response_time, double wait, double overhead,
                 double busy) {
    response.Add(response_time);
    queue_wait.Add(wait);
    sched_overhead.Add(overhead);
    processing.Add(busy);
  }

  /// Merges another attribution block recorded with the same sampling
  /// period over a disjoint tuple subset (shard merge): every component
  /// accumulator absorbs the other's. Sampling keys on the global arrival
  /// id, so a partition of the arrivals samples exactly the tuples a
  /// single-pass run would.
  void Merge(const StageAttribution& other) {
    if (sample_every == 0) sample_every = other.sample_every;
    response.Merge(other.response);
    queue_wait.Merge(other.queue_wait);
    sched_overhead.Merge(other.sched_overhead);
    processing.Merge(other.processing);
    dependency_delay.Merge(other.dependency_delay);
  }
};

}  // namespace aqsios::obs

#endif  // AQSIOS_OBS_ATTRIBUTION_H_
