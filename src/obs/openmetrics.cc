#include "obs/openmetrics.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/check.h"

namespace aqsios::obs {
namespace {

/// Formats a double the way Prometheus clients expect: shortest-ish decimal,
/// no locale surprises. %.17g round-trips; trim is not needed for a lint
/// pass, but keep the common integral case compact.
std::string FormatValue(double value) {
  if (value == static_cast<int64_t>(value) && value > -1e15 && value < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(value)));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// Escapes a label value per the OpenMetrics ABNF (backslash, quote, \n).
std::string EscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

class Exposition {
 public:
  /// Starts a metric family: `# TYPE`/`# HELP` metadata. `name` is the
  /// family name — counter samples get the `_total` suffix appended at
  /// Sample time, per the OpenMetrics counter grammar.
  void Family(const std::string& name, const std::string& type,
              const std::string& help) {
    out_ << "# TYPE " << name << ' ' << type << '\n';
    out_ << "# HELP " << name << ' ' << help << '\n';
    family_ = name;
    counter_ = type == "counter";
  }

  void Sample(double value) { SampleWithLabels("", value); }

  void Shard(int shard, double value) {
    SampleWithLabels("shard=\"" + std::to_string(shard) + "\"", value);
  }

  void Labeled(const std::string& labels, double value) {
    SampleWithLabels(labels, value);
  }

  std::string Finish() {
    out_ << "# EOF\n";
    return out_.str();
  }

 private:
  void SampleWithLabels(const std::string& labels, double value) {
    out_ << family_;
    if (counter_) out_ << "_total";
    if (!labels.empty()) out_ << '{' << labels << '}';
    out_ << ' ' << FormatValue(value) << '\n';
  }

  std::ostringstream out_;
  std::string family_;
  bool counter_ = false;
};

}  // namespace

std::string RenderOpenMetrics(const TelemetryMeta& meta,
                              const std::vector<ShardObservation>& observations,
                              int64_t sample_index, double wall_sec) {
  Exposition out;

  out.Family("aqsios_build", "gauge", "Static run metadata as labels.");
  out.Labeled("job=\"" + EscapeLabel(meta.job) + "\",policy=\"" +
                  EscapeLabel(meta.policy) + "\"",
              1.0);

  out.Family("aqsios_sampler_ticks", "counter",
             "Telemetry sampler ticks taken.");
  out.Sample(static_cast<double>(sample_index + 1));

  out.Family("aqsios_sampler_wall_seconds", "gauge",
             "Wall-clock seconds since the sampler started.");
  out.Sample(wall_sec);

  out.Family("aqsios_shards", "gauge", "Number of shards in the run.");
  out.Sample(static_cast<double>(observations.size()));

  out.Family("aqsios_shard_virtual_seconds", "gauge",
             "Per-shard engine virtual clock.");
  for (const ShardObservation& o : observations) {
    out.Shard(o.shard, o.sample.virtual_sec);
  }

  out.Family("aqsios_shard_busy_seconds", "gauge",
             "Per-shard virtual busy (processing) seconds.");
  for (const ShardObservation& o : observations) {
    out.Shard(o.shard, o.sample.busy_sec);
  }

  out.Family("aqsios_shard_queued_tuples", "gauge",
             "Tuples currently queued across the shard's units.");
  for (const ShardObservation& o : observations) {
    out.Shard(o.shard, static_cast<double>(o.sample.queued_tuples));
  }

  out.Family("aqsios_shard_done", "gauge",
             "1 once the shard's run has drained.");
  for (const ShardObservation& o : observations) {
    out.Shard(o.shard, o.sample.done ? 1.0 : 0.0);
  }

  out.Family("aqsios_tuples_executed", "counter",
             "Queue entries dequeued and executed, per shard.");
  for (const ShardObservation& o : observations) {
    out.Shard(o.shard, static_cast<double>(o.sample.tuples_executed));
  }

  out.Family("aqsios_tuples_emitted", "counter",
             "Tuples emitted at query roots, per shard.");
  for (const ShardObservation& o : observations) {
    out.Shard(o.shard, static_cast<double>(o.sample.tuples_emitted));
  }

  out.Family("aqsios_tuples_filtered", "counter",
             "Tuples dropped by operator predicates, per shard.");
  for (const ShardObservation& o : observations) {
    out.Shard(o.shard, static_cast<double>(o.sample.tuples_filtered));
  }

  out.Family("aqsios_tuples_shed", "counter",
             "Source tuples shed by overload control, per shard.");
  for (const ShardObservation& o : observations) {
    out.Shard(o.shard, static_cast<double>(o.sample.tuples_shed));
  }

  out.Family("aqsios_tuples_offered", "counter",
             "Shed-path admission opportunities, per shard.");
  for (const ShardObservation& o : observations) {
    out.Shard(o.shard, static_cast<double>(o.sample.tuples_offered));
  }

  out.Family("aqsios_scheduling_points", "counter",
             "Scheduling decisions taken, per shard.");
  for (const ShardObservation& o : observations) {
    out.Shard(o.shard, static_cast<double>(o.sample.scheduling_points));
  }

  out.Family("aqsios_arrivals_routed", "counter",
             "Arrivals routed to the shard by the router pass.");
  for (const ShardObservation& o : observations) {
    out.Shard(o.shard, static_cast<double>(o.routed));
  }

  out.Family("aqsios_admission_rejected", "counter",
             "Arrivals rejected by the admission controller, per shard.");
  for (const ShardObservation& o : observations) {
    out.Shard(o.shard, static_cast<double>(o.admission_rejected));
  }

  out.Family("aqsios_shard_migrations", "counter",
             "Placement groups migrated out of the shard by the elastic "
             "rebalance controller.");
  for (const ShardObservation& o : observations) {
    out.Shard(o.shard, static_cast<double>(o.migrations));
  }

  out.Family("aqsios_shard_steals", "counter",
             "Queued trains the shard stole as an idle thief.");
  for (const ShardObservation& o : observations) {
    out.Shard(o.shard, static_cast<double>(o.steals));
  }

  out.Family("aqsios_calibration_updates", "counter",
             "Unit stats rewritten by the online calibrator, per shard.");
  for (const ShardObservation& o : observations) {
    out.Shard(o.shard, static_cast<double>(o.sample.calibration_updates));
  }

  out.Family("aqsios_calibration_rekeys", "counter",
             "Calibrated rewrites that re-keyed a unit with pending work, "
             "per shard.");
  for (const ShardObservation& o : observations) {
    out.Shard(o.shard, static_cast<double>(o.sample.calibration_rekeys));
  }

  out.Family("aqsios_calibration_cost_drift", "gauge",
             "Mean |estimated/static - 1| per-tuple cost drift as of the "
             "shard's last calibration epoch.");
  for (const ShardObservation& o : observations) {
    out.Shard(o.shard, o.sample.calibration_cost_drift);
  }

  out.Family("aqsios_shard_slowdown_mean", "gauge",
             "Mean emitted-tuple slowdown so far, per shard.");
  for (const ShardObservation& o : observations) {
    const double mean =
        o.sample.slowdown_count > 0
            ? o.sample.slowdown_sum / static_cast<double>(o.sample.slowdown_count)
            : 0.0;
    out.Shard(o.shard, mean);
  }

  out.Family("aqsios_shard_slowdown_max", "gauge",
             "Maximum emitted-tuple slowdown so far, per shard.");
  for (const ShardObservation& o : observations) {
    out.Shard(o.shard, o.sample.max_slowdown);
  }

  return out.Finish();
}

bool WriteFileAtomic(const std::string& path, const std::string& body) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const bool flushed = std::fclose(f) == 0 && written == body.size();
  if (!flushed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

bool MetricsHttpServer::Start(int port) {
  AQSIOS_CHECK(listen_fd_ < 0) << "MetricsHttpServer started twice";
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 8) != 0) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return false;
  }
  listen_fd_ = fd;
  port_ = static_cast<int>(ntohs(addr.sin_port));
  stopping_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void MetricsHttpServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_release);
  // Wake the blocked accept(): shutdown on a listening socket makes it
  // return with an error on Linux.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = -1;
}

void MetricsHttpServer::SetBody(const std::string& body) {
  std::lock_guard<std::mutex> lock(body_mutex_);
  body_ = body;
}

void MetricsHttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      break;  // Stop() shut the listening socket down.
    }
    // Read (and ignore) the request line + headers; a scrape fits one read.
    char request[1024];
    (void)::recv(client, request, sizeof(request), 0);
    std::string body;
    {
      std::lock_guard<std::mutex> lock(body_mutex_);
      body = body_;
    }
    std::string response =
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: application/openmetrics-text; version=1.0.0; "
        "charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) +
        "\r\n"
        "Connection: close\r\n\r\n" +
        body;
    size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t n =
          ::send(client, response.data() + sent, response.size() - sent, 0);
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
    ::close(client);
  }
}

}  // namespace aqsios::obs
