// Typed trace events recorded by the execution engine.
//
// Every event is stamped with the *virtual* clock: the trace explains where
// simulated time went (wait W_x, processing T, scheduling overhead,
// dependency delay), not where wall-clock went. One compact POD per event so
// the tracer's ring buffer stays allocation-free on the hot path.

#ifndef AQSIOS_OBS_EVENT_H_
#define AQSIOS_OBS_EVENT_H_

#include <cstdint>

#include "common/sim_time.h"

namespace aqsios::obs {

enum class EventKind : uint8_t {
  /// A stream tuple entered the system. query = -1, unit = stream id,
  /// a = arrival id.
  kTupleArrival,
  /// A queue entry was pushed onto a unit's input queue. a = arrival id.
  kEnqueue,
  /// One unit execution (pipelined segment run). time = start,
  /// duration = busy time; a = arrival id of the consumed head entry.
  kSegmentRun,
  /// One operator invocation inside an execution. duration = operator cost.
  kOperatorInvocation,
  /// A tuple was emitted at a query root. a = arrival id, b = slowdown.
  kEmit,
  /// A tuple failed an operator predicate and was dropped.
  kFilterDrop,
  /// A window-join probe. a = matching candidates found.
  kJoinProbe,
  /// A scheduling decision. unit = chosen unit, a = candidates scanned,
  /// b = priority value of the chosen unit (policy-specific; 0 when the
  /// policy computes no numeric priority).
  kSchedDecision,
  /// An adaptation tick of the statistics monitor. a = units refreshed.
  kAdaptationTick,
  /// A source tuple was shed at admission to a leaf queue (QoS-aware load
  /// shedding, exec::ShedConfig). a = arrival id, b = total queued tuples
  /// when the shed decision was made.
  kShed,
};

const char* EventKindName(EventKind kind);

struct TraceEvent {
  EventKind kind = EventKind::kTupleArrival;
  /// Virtual time of the event (start time for kSegmentRun).
  SimTime time = 0.0;
  /// Virtual duration for span-like events; 0 for instants.
  SimTime duration = 0.0;
  /// Schedulable unit id, or -1 when not unit-scoped.
  int32_t unit = -1;
  /// Query id, or -1 when not query-scoped.
  int32_t query = -1;
  /// Kind-specific integer payload (arrival id, candidates, ...).
  int64_t a = 0;
  /// Kind-specific double payload (priority, slowdown, ...).
  double b = 0.0;
  /// Shard that recorded the event. Engines record 0 (each shard's tracer is
  /// a private single-producer sink); MergeShardTraces (obs/shard_trace.h)
  /// stamps the shard index when combining per-shard timelines.
  int16_t shard = 0;
};

}  // namespace aqsios::obs

#endif  // AQSIOS_OBS_EVENT_H_
