// Deterministic merging of per-shard trace timelines.
//
// The EventTracer ring buffer is a single-producer sink: concurrent Record()
// calls from several shard engines would race on the ring cursor and
// interleave nondeterministically. The sharded runtime therefore gives every
// shard its own tracer and merges afterwards, here: events are stamped with
// their shard index, shard-local query ids are translated back to global
// ids, and the per-shard streams are combined into one timeline ordered by
// virtual timestamp.
//
// Ordering contract (pinned by tests/obs_shard_trace_test.cc): the merged
// sequence is sorted by TraceEvent::time; events with equal timestamps keep
// shard order (shard 0's events first), and events of the same shard keep
// their original record order. The merge is therefore a pure function of the
// per-shard traces — independent of thread scheduling and repeatable
// bit-for-bit.

#ifndef AQSIOS_OBS_SHARD_TRACE_H_
#define AQSIOS_OBS_SHARD_TRACE_H_

#include <cstdint>
#include <vector>

#include "obs/event.h"
#include "obs/tracer.h"

namespace aqsios::obs {

/// One shard's trace sink plus its query-id translation.
struct ShardTraceInput {
  /// The shard's private tracer (one producer: that shard's engine).
  const EventTracer* tracer = nullptr;
  /// Shard-local query id -> global query id; nullptr or empty = identity.
  const std::vector<int32_t>* query_id_map = nullptr;
};

/// Merges the shards' surviving events into one timeline: stamps
/// TraceEvent::shard with the input index, remaps query ids to global, and
/// stable-sorts by virtual timestamp (see the ordering contract above).
std::vector<TraceEvent> MergeShardTraces(
    const std::vector<ShardTraceInput>& shards);

}  // namespace aqsios::obs

#endif  // AQSIOS_OBS_SHARD_TRACE_H_
