#include "obs/registry.h"

namespace aqsios::obs {

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const HistogramOptions& options) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(options)).first;
  }
  return it->second;
}

void WriteSummaryJson(JsonWriter& json, const HistogramSummary& summary) {
  json.BeginObject();
  json.Key("count");
  json.Number(summary.count);
  json.Key("mean");
  json.Number(summary.mean);
  json.Key("min");
  json.Number(summary.min);
  json.Key("max");
  json.Number(summary.max);
  json.Key("p50");
  json.Number(summary.p50);
  json.Key("p95");
  json.Number(summary.p95);
  json.Key("p99");
  json.Number(summary.p99);
  json.Key("p999");
  json.Number(summary.p999);
  json.EndObject();
}

void MetricsRegistry::WriteJson(JsonWriter& json) const {
  json.BeginObject();
  json.Key("counters");
  json.BeginObject();
  for (const auto& [name, value] : counters_) {
    json.Key(name);
    json.Number(value);
  }
  json.EndObject();
  json.Key("gauges");
  json.BeginObject();
  for (const auto& [name, value] : gauges_) {
    json.Key(name);
    json.Number(value);
  }
  json.EndObject();
  json.Key("histograms");
  json.BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    json.Key(name);
    WriteSummaryJson(json, histogram.Summarize());
  }
  json.EndObject();
  json.EndObject();
}

}  // namespace aqsios::obs
